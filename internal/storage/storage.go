// Package storage implements the PeerHood DeviceStorage as extended by the
// thesis (ch. 3): a routing table in which every known device carries not
// just its descriptor but the bridge (next hop), jump count, link-quality
// aggregates, and mobility metadata needed to reach it through the ad-hoc
// network. It implements the AnalyzeNeighbourhoodDevices merge (fig 3.13),
// the link-quality addition and threshold rules (figs 3.8–3.9), and the
// timestamp aging of the discovery loop (fig 3.12).
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/phproto"
)

// Default configuration values.
const (
	// DefaultQualityThreshold is the minimum per-hop link quality a route
	// should clear (230 throughout the thesis).
	DefaultQualityThreshold = 230
	// DefaultMaxMissedLoops is how many consecutive discovery loops a
	// direct neighbour may miss before its direct route is erased
	// (fig 3.12 "make older" / erase).
	DefaultMaxMissedLoops = 2
	// DefaultMaxJumps bounds stored route length; §3.4.2 argues long
	// routes are useless for mobile devices because the notification delay
	// grows linearly with jumps.
	DefaultMaxJumps = 8
	// DefaultMaxAlternates bounds the remembered candidate routes per
	// device (one per distinct first hop).
	DefaultMaxAlternates = 8
)

// Config parametrises a Storage. Zero fields take defaults.
type Config struct {
	Clock            clock.Clock
	QualityThreshold int
	MaxMissedLoops   int
	MaxJumps         int
	MaxAlternates    int

	// QualityFirst swaps the fig 3.13 comparison order to prefer link
	// quality over bridge mobility. The thesis argues static bridges make
	// the network backbone (§3.4.3); this flag exists for the A1 ablation
	// that quantifies that argument.
	QualityFirst bool
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.Real()
	}
	if c.QualityThreshold == 0 {
		c.QualityThreshold = DefaultQualityThreshold
	}
	if c.MaxMissedLoops == 0 {
		c.MaxMissedLoops = DefaultMaxMissedLoops
	}
	if c.MaxJumps == 0 {
		c.MaxJumps = DefaultMaxJumps
	}
	if c.MaxAlternates == 0 {
		c.MaxAlternates = DefaultMaxAlternates
	}
	return c
}

// Route is one way to reach a device: either direct (Jumps 0, zero Bridge)
// or through a bridge node.
type Route struct {
	// Jumps counts intermediate nodes; 0 means direct coverage (§3.3).
	Jumps int
	// Bridge is the first-hop node to dial for this route; zero if direct.
	Bridge device.Addr
	// QualitySum is the thesis' §3.4.1 addition of per-hop link qualities.
	QualitySum int
	// QualityMin is the weakest hop, checked against the 230 threshold.
	QualityMin int
	// BridgeMobility is the mobility class of the route's first hop — the
	// thesis keeps "only the nearest device's mobility" as the route's
	// stability measure (§3.4.3). For direct routes it is the target's own
	// class.
	BridgeMobility device.Mobility
	// MobilitySum aggregates mobility over the route like link quality.
	// The thesis considered and rejected this aggregate (§3.4.3); it is
	// kept for the ablation experiments.
	MobilitySum int
}

// Direct reports whether the route is a direct link.
func (r Route) Direct() bool { return r.Jumps == 0 }

// String implements fmt.Stringer.
func (r Route) String() string {
	if r.Direct() {
		return fmt.Sprintf("direct(q=%d)", r.QualitySum)
	}
	return fmt.Sprintf("via %s (jumps=%d q=%d min=%d mob=%v)",
		r.Bridge, r.Jumps, r.QualitySum, r.QualityMin, r.BridgeMobility)
}

// Entry is everything known about one remote device: its descriptor and the
// candidate routes to it, plus the aging state of its direct route.
type Entry struct {
	Info device.Info
	// Routes holds candidate routes, at most one per distinct first hop,
	// best first according to the fig 3.13 comparison.
	Routes []Route
	// MissedLoops counts consecutive discovery loops without a response
	// from the device (direct route aging, fig 3.12).
	MissedLoops int
	// LastSeen is when the device last responded to an inquiry or was
	// reported by a bridge.
	LastSeen time.Time
	// LastFetched is when the device's full information (services,
	// neighbourhood) was last fetched; the service-check interval compares
	// against it (fig 3.12).
	LastFetched time.Time
}

// Best returns the entry's preferred route.
func (e *Entry) Best() (Route, bool) {
	if len(e.Routes) == 0 {
		return Route{}, false
	}
	return e.Routes[0], true
}

// HasDirect reports whether a direct route exists.
func (e *Entry) HasDirect() bool {
	for _, r := range e.Routes {
		if r.Direct() {
			return true
		}
	}
	return false
}

func (e *Entry) clone() Entry {
	out := *e
	out.Info = e.Info.Clone()
	out.Routes = append([]Route(nil), e.Routes...)
	return out
}

// Storage is the device table of one PeerHood daemon. It is safe for
// concurrent use by the discovery loops of several plugins and the library.
type Storage struct {
	cfg Config

	mu      sync.RWMutex
	self    map[device.Addr]bool
	entries map[device.Addr]*Entry
}

// New returns an empty Storage.
func New(cfg Config) *Storage {
	return &Storage{
		cfg:     cfg.withDefaults(),
		self:    make(map[device.Addr]bool),
		entries: make(map[device.Addr]*Entry),
	}
}

// AddSelfAddr registers one of the local device's own radio addresses, so
// that echoes of ourselves in received neighbourhoods are filtered (the
// "own device comparison filter" of fig 3.13).
func (s *Storage) AddSelfAddr(a device.Addr) {
	s.mu.Lock()
	s.self[a] = true
	delete(s.entries, a)
	s.mu.Unlock()
}

// IsSelf reports whether a is one of the local device's addresses.
func (s *Storage) IsSelf(a device.Addr) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.self[a]
}

// Len returns the number of known devices.
func (s *Storage) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Lookup returns a copy of the entry for a.
func (s *Storage) Lookup(a device.Addr) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[a]
	if !ok {
		return Entry{}, false
	}
	return e.clone(), true
}

// Snapshot returns copies of all entries, sorted by address for
// deterministic iteration.
func (s *Storage) Snapshot() []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e.clone())
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Info.Addr.String() < out[j].Info.Addr.String()
	})
	return out
}

// Direct returns the entries that currently have a direct route.
func (s *Storage) Direct() []Entry {
	var out []Entry
	for _, e := range s.Snapshot() {
		if e.HasDirect() {
			out = append(out, e)
		}
	}
	return out
}

// FindByName returns the entry of the device with the given name.
func (s *Storage) FindByName(name string) (Entry, bool) {
	for _, e := range s.Snapshot() {
		if e.Info.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// ServiceProvider pairs a device entry with one of its services.
type ServiceProvider struct {
	Entry   Entry
	Service device.ServiceInfo
}

// FindService returns every known provider of the named service, best
// route first (fewest jumps, then the fig 3.13 ordering).
func (s *Storage) FindService(name string) []ServiceProvider {
	var out []ServiceProvider
	for _, e := range s.Snapshot() {
		if svc, ok := e.Info.FindService(name); ok && len(e.Routes) > 0 {
			out = append(out, ServiceProvider{Entry: e, Service: svc})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ri, _ := out[i].Entry.Best()
		rj, _ := out[j].Entry.Best()
		return s.better(ri, rj)
	})
	return out
}

// UpsertDirect records a direct inquiry response: the device is in coverage
// with the measured link quality. Info may be partial (inquiry responses
// carry only the address); full descriptors arrive via UpdateInfo after an
// information fetch.
func (s *Storage) UpsertDirect(info device.Info, quality int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.self[info.Addr] {
		return
	}
	now := s.cfg.Clock.Now()
	e, ok := s.entries[info.Addr]
	if !ok {
		e = &Entry{Info: info.Clone()}
		s.entries[info.Addr] = e
	} else if info.Name != "" {
		e.Info = info.Clone()
	}
	e.MissedLoops = 0
	e.LastSeen = now
	route := Route{
		Jumps:          0,
		QualitySum:     quality,
		QualityMin:     quality,
		BridgeMobility: e.Info.Mobility,
		MobilitySum:    int(e.Info.Mobility),
	}
	s.putRouteLocked(e, route)
}

// UpdateInfo replaces a device's descriptor after an information fetch and
// stamps LastFetched.
func (s *Storage) UpdateInfo(info device.Info) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.self[info.Addr] {
		return
	}
	e, ok := s.entries[info.Addr]
	if !ok {
		return
	}
	e.Info = info.Clone()
	e.LastFetched = s.cfg.Clock.Now()
	// Direct routes carry the target's own mobility; refresh it.
	for i := range e.Routes {
		if e.Routes[i].Direct() {
			e.Routes[i].BridgeMobility = info.Mobility
			e.Routes[i].MobilitySum = int(info.Mobility)
		}
	}
	s.resortLocked(e)
}

// NeedsFetch reports whether the device's full information is stale with
// respect to the service-check interval (fig 3.12: a longer re-check
// interval for already-known devices saves energy).
func (s *Storage) NeedsFetch(a device.Addr, interval time.Duration) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[a]
	if !ok {
		return true
	}
	if e.LastFetched.IsZero() {
		return true
	}
	return s.cfg.Clock.Since(e.LastFetched) >= interval
}

// MergeResult summarises one AnalyzeNeighbourhoodDevices pass.
type MergeResult struct {
	Added    int // new devices learned
	Updated  int // routes improved or refreshed
	Rejected int // candidates filtered (self, loops, jump cap)
	Removed  int // stale bridged routes dropped
}

// MergeNeighborhood implements AnalyzeNeighbourhoodDevices (fig 3.13): it
// folds a direct neighbour's transmitted DeviceStorage into ours. bridge is
// the reporting neighbour and bridgeQuality our measured link quality to
// it. Every reported device becomes a candidate route via that neighbour
// with one more jump (§3.3); candidates lose against stored routes by the
// fig 3.13 ordering. Routes via bridge that the bridge no longer reports
// are dropped (the bridge lost them, so they are unreachable through it).
func (s *Storage) MergeNeighborhood(bridge device.Addr, bridgeQuality int, nb []phproto.NeighborEntry) MergeResult {
	s.mu.Lock()
	defer s.mu.Unlock()

	var res MergeResult
	now := s.cfg.Clock.Now()

	bridgeMobility := device.Dynamic
	if be, ok := s.entries[bridge]; ok {
		bridgeMobility = be.Info.Mobility
	}

	reported := make(map[device.Addr]bool, len(nb))
	for _, ne := range nb {
		target := ne.Info.Addr
		reported[target] = true
		switch {
		case s.self[target]:
			// Own device comparison filter (fig 3.13).
			res.Rejected++
			continue
		case target == bridge:
			res.Rejected++
			continue
		case !ne.Bridge.IsZero() && s.self[ne.Bridge]:
			// The neighbour's route to this device passes through us:
			// adopting it would create a two-hop relay loop.
			res.Rejected++
			continue
		}
		jumps := int(ne.Jumps) + 1
		if jumps > s.cfg.MaxJumps {
			res.Rejected++
			continue
		}
		route := Route{
			Jumps:          jumps,
			Bridge:         bridge,
			QualitySum:     bridgeQuality + int(ne.QualitySum),
			QualityMin:     minInt(bridgeQuality, int(ne.QualityMin)),
			BridgeMobility: bridgeMobility,
			MobilitySum:    int(bridgeMobility) + int(ne.Info.Mobility),
		}
		e, ok := s.entries[target]
		if !ok {
			e = &Entry{Info: ne.Info.Clone(), LastSeen: now, LastFetched: now}
			s.entries[target] = e
			res.Added++
		} else {
			res.Updated++
			e.LastSeen = now
			// Prefer the richer descriptor: a bridged report may carry
			// services we have not fetched ourselves yet.
			if len(e.Info.Services) == 0 && len(ne.Info.Services) > 0 {
				e.Info = ne.Info.Clone()
			}
		}
		s.putRouteLocked(e, route)
	}

	// Drop bridged routes the bridge stopped reporting.
	for addr, e := range s.entries {
		changed := false
		kept := e.Routes[:0]
		for _, r := range e.Routes {
			if r.Bridge == bridge && !reported[addr] {
				changed = true
				res.Removed++
				continue
			}
			kept = append(kept, r)
		}
		e.Routes = kept
		if changed && len(e.Routes) == 0 {
			delete(s.entries, addr)
		}
	}
	return res
}

// AgeRound applies one discovery loop's aging for tech (fig 3.12):
// responded devices are refreshed elsewhere (UpsertDirect); every other
// direct neighbour of this technology gets "older" and its direct route is
// erased after MaxMissedLoops. Devices left with no routes are removed,
// along with any routes bridged through a device that just lost its direct
// route (we can no longer dial that bridge). Returns the removed addresses.
func (s *Storage) AgeRound(tech device.Tech, responded map[device.Addr]bool) []device.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()

	var lostBridges []device.Addr
	for addr, e := range s.entries {
		if addr.Tech != tech || !e.HasDirect() || responded[addr] {
			continue
		}
		e.MissedLoops++
		if e.MissedLoops <= s.cfg.MaxMissedLoops {
			continue
		}
		kept := e.Routes[:0]
		for _, r := range e.Routes {
			if r.Direct() {
				continue
			}
			kept = append(kept, r)
		}
		e.Routes = kept
		lostBridges = append(lostBridges, addr)
	}

	// A device whose direct route vanished can no longer serve as our first
	// hop: drop routes bridged through it.
	var removed []device.Addr
	for _, bridge := range lostBridges {
		for addr, e := range s.entries {
			kept := e.Routes[:0]
			for _, r := range e.Routes {
				if r.Bridge == bridge {
					continue
				}
				kept = append(kept, r)
			}
			e.Routes = kept
			_ = addr
		}
	}
	for addr, e := range s.entries {
		if len(e.Routes) == 0 {
			delete(s.entries, addr)
			removed = append(removed, addr)
		}
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i].String() < removed[j].String() })
	return removed
}

// RemoveDirect erases the direct route to a immediately (used when a dial
// to a direct neighbour fails hard).
func (s *Storage) RemoveDirect(a device.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[a]
	if !ok {
		return
	}
	kept := e.Routes[:0]
	for _, r := range e.Routes {
		if r.Direct() {
			continue
		}
		kept = append(kept, r)
	}
	e.Routes = kept
	if len(e.Routes) == 0 {
		delete(s.entries, a)
	}
}

// WireEntries renders the storage as the neighbourhood message transmitted
// to inquiring peers: every known device with its best route's metadata
// (§3.3 — sending the whole DeviceStorage is what gives the network total
// environment awareness).
func (s *Storage) WireEntries() []phproto.NeighborEntry {
	snap := s.Snapshot()
	out := make([]phproto.NeighborEntry, 0, len(snap))
	for _, e := range snap {
		best, ok := e.Best()
		if !ok {
			continue
		}
		out = append(out, phproto.NeighborEntry{
			Info:       e.Info.Clone(),
			Jumps:      uint8(minInt(best.Jumps, 255)),
			Bridge:     best.Bridge,
			QualitySum: uint32(maxInt(best.QualitySum, 0)),
			QualityMin: uint8(clampInt(best.QualityMin, 0, 255)),
		})
	}
	return out
}

// AlternateRoutes returns every candidate route to a, best first,
// optionally excluding one first hop (the handover thread excludes the
// currently failing bridge, §5.2.2).
func (s *Storage) AlternateRoutes(a device.Addr, excludeBridge device.Addr) []Route {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[a]
	if !ok {
		return nil
	}
	out := make([]Route, 0, len(e.Routes))
	for _, r := range e.Routes {
		if !excludeBridge.IsZero() && r.Bridge == excludeBridge {
			continue
		}
		out = append(out, r)
	}
	return out
}

// putRouteLocked installs route as the candidate for its first hop,
// keeping Routes sorted best-first and capped at MaxAlternates.
func (s *Storage) putRouteLocked(e *Entry, route Route) {
	kept := e.Routes[:0]
	for _, r := range e.Routes {
		if r.Bridge == route.Bridge {
			continue // replaced by the fresh report for this first hop
		}
		kept = append(kept, r)
	}
	e.Routes = append(kept, route)
	s.resortLocked(e)
	if len(e.Routes) > s.cfg.MaxAlternates {
		e.Routes = e.Routes[:s.cfg.MaxAlternates]
	}
}

func (s *Storage) resortLocked(e *Entry) {
	sort.SliceStable(e.Routes, func(i, j int) bool {
		return s.better(e.Routes[i], e.Routes[j])
	})
}

// better implements the fig 3.13 route comparison: fewer jumps win; ties go
// to the lower (more static) first-hop mobility; then to routes whose every
// hop clears the quality threshold (fig 3.9's equity rule); finally to the
// higher quality sum (§3.4.1). With QualityFirst the mobility and quality
// criteria swap places (ablation A1).
func (s *Storage) better(a, b Route) bool {
	if a.Jumps != b.Jumps {
		return a.Jumps < b.Jumps
	}
	aOK := a.QualityMin >= s.cfg.QualityThreshold
	bOK := b.QualityMin >= s.cfg.QualityThreshold
	if s.cfg.QualityFirst {
		if aOK != bOK {
			return aOK
		}
		if a.QualitySum != b.QualitySum {
			return a.QualitySum > b.QualitySum
		}
		return a.BridgeMobility < b.BridgeMobility
	}
	if a.BridgeMobility != b.BridgeMobility {
		return a.BridgeMobility < b.BridgeMobility
	}
	if aOK != bOK {
		return aOK
	}
	return a.QualitySum > b.QualitySum
}

// CompareRoutes exposes the route ordering for other packages (handover
// picks "the best quality way", fig 5.5 state 0).
func (s *Storage) CompareRoutes(a, b Route) bool { return s.better(a, b) }

// String renders the storage as the thesis' fig 3.6 table for debugging
// and the experiment harness.
func (s *Storage) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-24s %5s  %-24s %7s %6s\n",
		"NAME", "ADDR", "JUMPS", "BRIDGE", "QUALITY", "MOB")
	for _, e := range s.Snapshot() {
		best, ok := e.Best()
		if !ok {
			continue
		}
		bridge := "-"
		if !best.Bridge.IsZero() {
			bridge = best.Bridge.String()
		}
		fmt.Fprintf(&b, "%-16s %-24s %5d  %-24s %7d %6s\n",
			e.Info.Name, e.Info.Addr, best.Jumps, bridge, best.QualitySum, e.Info.Mobility)
	}
	return b.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
