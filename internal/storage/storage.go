// Package storage implements the PeerHood DeviceStorage as extended by the
// thesis (ch. 3): a routing table in which every known device carries not
// just its descriptor but the bridge (next hop), jump count, link-quality
// aggregates, and mobility metadata needed to reach it through the ad-hoc
// network. It implements the AnalyzeNeighbourhoodDevices merge (fig 3.13),
// the link-quality addition and threshold rules (figs 3.8–3.9), and the
// timestamp aging of the discovery loop (fig 3.12).
package storage

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/phproto"
	"peerhood/internal/telemetry"
)

// Default configuration values.
const (
	// DefaultQualityThreshold is the minimum per-hop link quality a route
	// should clear (230 throughout the thesis).
	DefaultQualityThreshold = 230
	// DefaultMaxMissedLoops is how many consecutive discovery loops a
	// direct neighbour may miss before its direct route is erased
	// (fig 3.12 "make older" / erase).
	DefaultMaxMissedLoops = 2
	// DefaultMaxJumps bounds stored route length; §3.4.2 argues long
	// routes are useless for mobile devices because the notification delay
	// grows linearly with jumps.
	DefaultMaxJumps = 8
	// DefaultMaxAlternates bounds the remembered candidate routes per
	// device (one per distinct first hop).
	DefaultMaxAlternates = 8
	// DefaultJournalLimit bounds the change journal backing delta
	// neighbourhood sync. A fetcher further behind than the journal covers
	// is served a FULL table instead of a delta.
	DefaultJournalLimit = 4096
)

// Config parametrises a Storage. Zero fields take defaults.
type Config struct {
	Clock            clock.Clock
	QualityThreshold int
	MaxMissedLoops   int
	MaxJumps         int
	MaxAlternates    int
	// JournalLimit bounds the change journal (in records) that backs
	// WireEntriesSince. Older changes are forgotten; peers that far behind
	// fall back to a full fetch.
	JournalLimit int

	// QualityFirst swaps the fig 3.13 comparison order to prefer link
	// quality over bridge mobility. The thesis argues static bridges make
	// the network backbone (§3.4.3); this flag exists for the A1 ablation
	// that quantifies that argument.
	QualityFirst bool

	// Registry receives the storage's telemetry (merge counters, sync-serve
	// counters, table-size gauge); nil disables. The handles are resolved
	// once here, so the merge hot paths keep their 0 allocs/op budgets.
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.Real()
	}
	if c.QualityThreshold == 0 {
		c.QualityThreshold = DefaultQualityThreshold
	}
	if c.MaxMissedLoops == 0 {
		c.MaxMissedLoops = DefaultMaxMissedLoops
	}
	if c.MaxJumps == 0 {
		c.MaxJumps = DefaultMaxJumps
	}
	if c.MaxAlternates == 0 {
		c.MaxAlternates = DefaultMaxAlternates
	}
	if c.JournalLimit == 0 {
		c.JournalLimit = DefaultJournalLimit
	}
	return c
}

// Route is one way to reach a device: either direct (Jumps 0, zero Bridge)
// or through a bridge node.
type Route struct {
	// Jumps counts intermediate nodes; 0 means direct coverage (§3.3).
	Jumps int
	// Bridge is the first-hop node to dial for this route; zero if direct.
	Bridge device.Addr
	// QualitySum is the thesis' §3.4.1 addition of per-hop link qualities.
	QualitySum int
	// QualityMin is the weakest hop, checked against the 230 threshold.
	QualityMin int
	// BridgeMobility is the mobility class of the route's first hop — the
	// thesis keeps "only the nearest device's mobility" as the route's
	// stability measure (§3.4.3). For direct routes it is the target's own
	// class.
	BridgeMobility device.Mobility
	// MobilitySum aggregates mobility over the route like link quality.
	// The thesis considered and rejected this aggregate (§3.4.3); it is
	// kept for the ablation experiments.
	MobilitySum int
	// RemoteQualitySum and RemoteQualityMin are the aggregates the bridge
	// reported for its part of the route; QualitySum/QualityMin add the
	// local first hop on top. Kept so delta sync can refresh the local
	// hop's drift without a re-report (RefreshBridgeLink) — the full
	// exchange re-derives them on every fetch instead. Zero for direct
	// routes.
	RemoteQualitySum int
	RemoteQualityMin int
}

// Direct reports whether the route is a direct link.
func (r Route) Direct() bool { return r.Jumps == 0 }

// String implements fmt.Stringer.
func (r Route) String() string {
	if r.Direct() {
		return fmt.Sprintf("direct(q=%d)", r.QualitySum)
	}
	return fmt.Sprintf("via %s (jumps=%d q=%d min=%d mob=%v)",
		r.Bridge, r.Jumps, r.QualitySum, r.QualityMin, r.BridgeMobility)
}

// Entry is everything known about one remote device: its descriptor and the
// candidate routes to it, plus the aging state of its direct route.
type Entry struct {
	Info device.Info
	// Routes holds candidate routes, at most one per distinct first hop,
	// best first according to the fig 3.13 comparison.
	Routes []Route
	// MissedLoops counts consecutive discovery loops without a response
	// from the device (direct route aging, fig 3.12).
	MissedLoops int
	// LastSeen is when the device last responded to an inquiry or was
	// reported by a bridge.
	LastSeen time.Time
	// LastFetched is when the device's full information (services,
	// neighbourhood) was last fetched; the service-check interval compares
	// against it (fig 3.12).
	LastFetched time.Time
	// Gen is the storage generation that last changed this entry's
	// transmitted form (descriptor or best route). Refreshes that peers
	// cannot observe — LastSeen, an identical re-reported route — do not
	// advance it.
	Gen uint64
	// evictedVia lists bridges whose route to this device the MaxAlternates
	// cap dropped and that have not since re-reported or tombstoned it —
	// bridges that may still reach the device after every remembered route
	// dies. Folded into the sync-state reset set when the entry is removed.
	evictedVia []device.Addr
	// id caches Info.Identity() so the identity index stays consistent with
	// the descriptor across partial updates.
	id device.ID
}

// Identity returns the entry's cross-interface device identity.
func (e *Entry) Identity() device.ID { return e.id }

// noteEvictedVia remembers a capacity-evicted route's bridge.
func (e *Entry) noteEvictedVia(bridge device.Addr) {
	for _, a := range e.evictedVia {
		if a == bridge {
			return
		}
	}
	e.evictedVia = append(e.evictedVia, bridge)
}

// forgetEvictedVia drops a bridge whose knowledge of this device is
// current again (it re-reported the device) or gone (it tombstoned it).
func (e *Entry) forgetEvictedVia(bridge device.Addr) {
	for i, a := range e.evictedVia {
		if a == bridge {
			e.evictedVia = append(e.evictedVia[:i], e.evictedVia[i+1:]...)
			return
		}
	}
}

// Best returns the entry's preferred route.
func (e *Entry) Best() (Route, bool) {
	if len(e.Routes) == 0 {
		return Route{}, false
	}
	return e.Routes[0], true
}

// HasDirect reports whether a direct route exists.
func (e *Entry) HasDirect() bool {
	for _, r := range e.Routes {
		if r.Direct() {
			return true
		}
	}
	return false
}

func (e *Entry) clone() Entry {
	out := *e
	out.Info = e.Info.Clone()
	out.Routes = append([]Route(nil), e.Routes...)
	out.evictedVia = append([]device.Addr(nil), e.evictedVia...)
	return out
}

// Storage is the device table of one PeerHood daemon. It is safe for
// concurrent use by the discovery loops of several plugins and the library.
//
// The storage is versioned for delta neighbourhood sync: a monotonic
// generation counter advances on every mutation that changes what peers
// would receive over the wire, a bounded journal remembers which devices
// changed at which generation (including removals, served as tombstones),
// and a running digest fingerprints the whole transmitted table. Peers fetch
// FULL once and then request only the changes since the generation they
// last merged (WireEntriesSince / SyncResponse).
type Storage struct {
	cfg   Config
	epoch uint64

	mu      sync.RWMutex
	self    map[device.Addr]bool
	entries map[device.Addr]*Entry
	// ids groups stored interfaces by cross-interface device identity
	// (device.ID): the identity plane over the per-interface rows. Rows stay
	// the wire unit; the index only adds the "same peer, other radio" view
	// that Siblings and AlternateRoutesByIdentity serve.
	ids map[device.ID]map[device.Addr]bool

	// gen is the generation of the last wire-visible mutation.
	gen uint64
	// wireHash fingerprints each wire-visible entry's transmitted form;
	// digestHash is the XOR of all of them (phproto.DigestOf convention).
	wireHash   map[device.Addr]uint64
	digestHash uint64
	// journal records (generation, device) for every wire-visible change,
	// oldest first. journalFloor is the highest generation the journal no
	// longer covers: deltas can be served for any since-generation >= it.
	journal      []journalRec
	journalFloor uint64
	// evicted collects bridges whose capacity-evicted route could have
	// kept a just-removed device reachable. The loss is local — the
	// bridge's own storage is unchanged, so its deltas would never
	// re-offer the row the way every full exchange does — and the
	// discoverer must reset that bridge's sync state (TakeEvictedBridges),
	// exactly as it does for AgeRound's lostBridges. Recorded only at
	// entry removal: while other routes survive, the evicted one is dead
	// weight and resetting on every eviction would degrade a dense
	// neighbourhood to permanent full sync.
	evicted map[device.Addr]bool

	// scratch holds reusable buffers for the merge/delta hot paths, so a
	// steady-state discovery round performs no per-call map or slice
	// allocations. All of it is guarded by mu — which is why the delta
	// responders (WireEntriesSince, SyncResponse) take the write lock.
	scratch struct {
		reported map[device.Addr]bool // MergeNeighborhood's reported-set
		touched  map[device.Addr]bool // deltaLocked's coalescing set
		addrs    []device.Addr        // deltaLocked's sort buffer
	}
	// free recycles Entry boxes removed from the table, Routes and
	// evictedVia backing arrays included, so churn — devices flapping in
	// and out of coverage — does not box a fresh Entry per reappearance.
	// Safe because no *Entry ever escapes the lock: every public API
	// clones before returning.
	free []*Entry

	// Telemetry handles, resolved at construction (nil-safe when no
	// registry is configured; see telemetry package).
	mergesFull      *telemetry.Counter
	mergesDelta     *telemetry.Counter
	mergeRows       *telemetry.Counter
	mergeRejects    *telemetry.Counter
	syncServedFull  *telemetry.Counter
	syncServedDelta *telemetry.Counter
	entriesGauge    *telemetry.Gauge
}

// maxFreeEntries bounds the Entry free list; beyond it removed entries are
// left to the garbage collector (a one-off mass removal should not pin its
// peak forever).
const maxFreeEntries = 512

type journalRec struct {
	gen  uint64
	addr device.Addr
}

// epochSeq disambiguates storages created in the same wall-clock nanosecond
// (simulated worlds create hundreds per second).
var epochSeq atomic.Uint64

func newEpoch() uint64 {
	e := uint64(time.Now().UnixNano())*0x9E3779B97F4A7C15 + epochSeq.Add(1)
	if e == 0 {
		e = 1
	}
	return e
}

// New returns an empty Storage with a fresh epoch.
func New(cfg Config) *Storage {
	cfg = cfg.withDefaults()
	return &Storage{
		cfg:      cfg,
		epoch:    newEpoch(),
		self:     make(map[device.Addr]bool),
		entries:  make(map[device.Addr]*Entry),
		ids:      make(map[device.ID]map[device.Addr]bool),
		wireHash: make(map[device.Addr]uint64),
		evicted:  make(map[device.Addr]bool),

		mergesFull:      cfg.Registry.Counter(`peerhood_storage_merges_total{kind="full"}`),
		mergesDelta:     cfg.Registry.Counter(`peerhood_storage_merges_total{kind="delta"}`),
		mergeRows:       cfg.Registry.Counter("peerhood_storage_merge_rows_total"),
		mergeRejects:    cfg.Registry.Counter("peerhood_storage_merge_rejected_total"),
		syncServedFull:  cfg.Registry.Counter(`peerhood_storage_sync_served_total{kind="full"}`),
		syncServedDelta: cfg.Registry.Counter(`peerhood_storage_sync_served_total{kind="delta"}`),
		entriesGauge:    cfg.Registry.Gauge("peerhood_storage_entries"),
	}
}

// AddSelfAddr registers one of the local device's own radio addresses, so
// that echoes of ourselves in received neighbourhoods are filtered (the
// "own device comparison filter" of fig 3.13).
func (s *Storage) AddSelfAddr(a device.Addr) {
	s.mu.Lock()
	s.self[a] = true
	if e, ok := s.entries[a]; ok {
		s.dropIdentityLocked(a, e.id)
	}
	delete(s.entries, a)
	s.touchLocked(a)
	s.mu.Unlock()
}

// reindexIdentityLocked re-files the entry under the identity its current
// descriptor derives. Every mutation that may change Info funnels through
// it, so the identity index (and the entry's cached id) never drifts from
// the descriptors — including across delta syncs and the full resyncs that
// follow a peer's epoch reset, which simply replay descriptors through the
// same path.
func (s *Storage) reindexIdentityLocked(addr device.Addr, e *Entry) {
	id := e.Info.Identity()
	if e.id == id {
		return
	}
	s.dropIdentityLocked(addr, e.id)
	e.id = id
	m := s.ids[id]
	if m == nil {
		m = make(map[device.Addr]bool)
		s.ids[id] = m
	}
	m[addr] = true
}

// dropIdentityLocked removes addr from the identity group id.
func (s *Storage) dropIdentityLocked(addr device.Addr, id device.ID) {
	if id == "" {
		return
	}
	if m := s.ids[id]; m != nil {
		delete(m, addr)
		if len(m) == 0 {
			delete(s.ids, id)
		}
	}
}

// relinkSiblingsLocked back-fills sibling knowledge onto already-stored
// interfaces that e's fresh descriptor names but that were themselves
// learned without sibling advertisements (a legacy-path report, or a row
// stored before the device's identity reached us). Without this, the group
// an interface joins would depend on which interface happened to carry the
// canonical (smallest) address.
func (s *Storage) relinkSiblingsLocked(addr device.Addr, e *Entry) {
	if len(e.Info.Siblings) == 0 {
		return
	}
	for _, sib := range e.Info.Siblings {
		se, ok := s.entries[sib]
		if !ok || len(se.Info.Siblings) > 0 || se.id == e.id {
			continue
		}
		// The reciprocal view: the sibling's interfaces are e's interfaces
		// minus itself, plus e's own address.
		recip := make([]device.Addr, 0, len(e.Info.Siblings))
		recip = append(recip, addr)
		for _, o := range e.Info.Siblings {
			if o != sib {
				recip = append(recip, o)
			}
		}
		sort.Slice(recip, func(i, j int) bool { return recip[i].Less(recip[j]) })
		se.Info.Siblings = recip
		s.reindexIdentityLocked(sib, se)
		s.touchLocked(sib)
	}
}

// IsSelf reports whether a is one of the local device's addresses.
func (s *Storage) IsSelf(a device.Addr) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.self[a]
}

// Len returns the number of known devices.
func (s *Storage) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Lookup returns a copy of the entry for a.
func (s *Storage) Lookup(a device.Addr) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[a]
	if !ok {
		return Entry{}, false
	}
	return e.clone(), true
}

// Snapshot returns copies of all entries, sorted by address for
// deterministic iteration.
func (s *Storage) Snapshot() []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e.clone())
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Info.Addr.Less(out[j].Info.Addr)
	})
	return out
}

// Direct returns the entries that currently have a direct route.
func (s *Storage) Direct() []Entry {
	var out []Entry
	for _, e := range s.Snapshot() {
		if e.HasDirect() {
			out = append(out, e)
		}
	}
	return out
}

// FindByName returns the entry of the device with the given name.
func (s *Storage) FindByName(name string) (Entry, bool) {
	for _, e := range s.Snapshot() {
		if e.Info.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// ServiceProvider pairs a device entry with one of its services.
type ServiceProvider struct {
	Entry   Entry
	Service device.ServiceInfo
}

// FindService returns every known provider of the named service, best
// route first (fewest jumps, then the fig 3.13 ordering).
func (s *Storage) FindService(name string) []ServiceProvider {
	var out []ServiceProvider
	for _, e := range s.Snapshot() {
		if svc, ok := e.Info.FindService(name); ok && len(e.Routes) > 0 {
			out = append(out, ServiceProvider{Entry: e, Service: svc})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ri, _ := out[i].Entry.Best()
		rj, _ := out[j].Entry.Best()
		return s.better(ri, rj)
	})
	return out
}

// UpsertDirect records a direct inquiry response: the device is in coverage
// with the measured link quality. Info may be partial (inquiry responses
// carry only the address); full descriptors arrive via UpdateInfo after an
// information fetch.
func (s *Storage) UpsertDirect(info device.Info, quality int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.self[info.Addr] {
		return
	}
	now := s.cfg.Clock.Now()
	e, ok := s.entries[info.Addr]
	infoChanged := false
	if !ok {
		e = s.newEntryLocked()
		e.Info = info.Clone()
		s.entries[info.Addr] = e
		infoChanged = true
	} else if info.Name != "" {
		e.Info = info.Clone()
		infoChanged = true
	}
	// See mergeCandidateLocked: an untouched descriptor cannot change
	// identity groups, so the bare inquiry-refresh path skips the reindex.
	if infoChanged {
		s.reindexIdentityLocked(info.Addr, e)
	}
	s.relinkSiblingsLocked(info.Addr, e)
	e.MissedLoops = 0
	e.LastSeen = now
	route := Route{
		Jumps:          0,
		QualitySum:     quality,
		QualityMin:     quality,
		BridgeMobility: e.Info.Mobility,
		MobilitySum:    int(e.Info.Mobility),
	}
	s.putRouteLocked(e, route)
	s.touchLocked(info.Addr)
}

// UpdateInfo replaces a device's descriptor after an information fetch and
// stamps LastFetched.
func (s *Storage) UpdateInfo(info device.Info) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.self[info.Addr] {
		return
	}
	e, ok := s.entries[info.Addr]
	if !ok {
		return
	}
	e.Info = info.Clone()
	s.reindexIdentityLocked(info.Addr, e)
	s.relinkSiblingsLocked(info.Addr, e)
	e.LastFetched = s.cfg.Clock.Now()
	// Direct routes carry the target's own mobility; refresh it.
	for i := range e.Routes {
		if e.Routes[i].Direct() {
			e.Routes[i].BridgeMobility = info.Mobility
			e.Routes[i].MobilitySum = int(info.Mobility)
		}
	}
	s.resortLocked(e)
	s.touchLocked(info.Addr)
}

// NeedsFetch reports whether the device's full information is stale with
// respect to the service-check interval (fig 3.12: a longer re-check
// interval for already-known devices saves energy).
func (s *Storage) NeedsFetch(a device.Addr, interval time.Duration) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[a]
	if !ok {
		return true
	}
	if e.LastFetched.IsZero() {
		return true
	}
	return s.cfg.Clock.Since(e.LastFetched) >= interval
}

// MergeResult summarises one AnalyzeNeighbourhoodDevices pass.
type MergeResult struct {
	Added    int // new devices learned
	Updated  int // routes improved or refreshed
	Rejected int // candidates filtered (self, loops, jump cap)
	Removed  int // stale bridged routes dropped
}

// MergeNeighborhood implements AnalyzeNeighbourhoodDevices (fig 3.13): it
// folds a direct neighbour's transmitted DeviceStorage into ours. bridge is
// the reporting neighbour and bridgeQuality our measured link quality to
// it. Every reported device becomes a candidate route via that neighbour
// with one more jump (§3.3); candidates lose against stored routes by the
// fig 3.13 ordering. Routes via bridge that the bridge no longer reports
// are dropped (the bridge lost them, so they are unreachable through it).
func (s *Storage) MergeNeighborhood(bridge device.Addr, bridgeQuality int, nb []phproto.NeighborEntry) MergeResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergesFull.Inc()

	var res MergeResult
	defer s.bookMergeLocked(&res)
	now := s.cfg.Clock.Now()

	bridgeMobility := device.Dynamic
	if be, ok := s.entries[bridge]; ok {
		bridgeMobility = be.Info.Mobility
	}

	reported := s.scratch.reported
	if reported == nil {
		reported = make(map[device.Addr]bool, len(nb))
		s.scratch.reported = reported
	}
	clear(reported)
	for _, ne := range nb {
		reported[ne.Info.Addr] = true
		s.mergeCandidateLocked(bridge, bridgeQuality, bridgeMobility, ne, now, &res)
	}

	// Drop bridged routes the bridge stopped reporting.
	for addr, e := range s.entries {
		if !reported[addr] {
			// The bridge no longer knows this device: a capacity-evicted
			// via-bridge route is not recoverable from it either.
			e.forgetEvictedVia(bridge)
		}
		changed := false
		kept := e.Routes[:0]
		for _, r := range e.Routes {
			if r.Bridge == bridge && !reported[addr] {
				changed = true
				res.Removed++
				continue
			}
			kept = append(kept, r)
		}
		e.Routes = kept
		if changed {
			if len(e.Routes) == 0 {
				s.removeEntryLocked(addr, e)
			}
			s.touchLocked(addr)
		}
	}
	return res
}

// MergeNeighborhoodDelta folds a delta sync from a direct neighbour into the
// table. Changed rows pass through the same fig 3.13 candidate rules as a
// full merge; tombstones drop the route via this bridge (the bridge lost the
// device, so it is unreachable through it). Unlike the full merge there is
// no "stopped reporting" sweep: absence from a delta means unchanged.
func (s *Storage) MergeNeighborhoodDelta(bridge device.Addr, bridgeQuality int, changed []phproto.NeighborEntry, tombstones []device.Addr) MergeResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergesDelta.Inc()

	var res MergeResult
	defer s.bookMergeLocked(&res)
	now := s.cfg.Clock.Now()

	bridgeMobility := device.Dynamic
	if be, ok := s.entries[bridge]; ok {
		bridgeMobility = be.Info.Mobility
	}

	for _, ne := range changed {
		s.mergeCandidateLocked(bridge, bridgeQuality, bridgeMobility, ne, now, &res)
	}

	for _, addr := range tombstones {
		e, ok := s.entries[addr]
		if !ok {
			continue
		}
		// The bridge lost this device: a capacity-evicted via-bridge route
		// is not recoverable from it either.
		e.forgetEvictedVia(bridge)
		dropped := false
		kept := e.Routes[:0]
		for _, r := range e.Routes {
			if r.Bridge == bridge {
				dropped = true
				res.Removed++
				continue
			}
			kept = append(kept, r)
		}
		e.Routes = kept
		if dropped {
			if len(e.Routes) == 0 {
				s.removeEntryLocked(addr, e)
			}
			s.touchLocked(addr)
		}
	}
	return res
}

// bookMergeLocked records a finished merge's telemetry: row outcomes and
// the table-size gauge. All handles are plain atomics (nil-safe when the
// storage carries no registry), so the merge paths keep their 0 allocs/op
// budgets. Callers hold s.mu.
func (s *Storage) bookMergeLocked(res *MergeResult) {
	s.mergeRows.Add(uint64(res.Added + res.Updated))
	s.mergeRejects.Add(uint64(res.Rejected))
	s.entriesGauge.Set(int64(len(s.entries)))
}

// RefreshBridgeLink recomputes the first-hop aggregates of every route
// through bridge: the link-quality sums from the current inquiry
// measurement, and the bridge-mobility fields from the bridge's current
// descriptor. The full exchange gets both for free — each fetch re-merges
// every reported row with the fresh inquiry quality and descriptor — but a
// delta leaves unchanged rows alone, so the local hop's drift must be
// folded in explicitly; without this, walking away from a bridge would
// leave via-bridge routes priced at the link quality of the round their
// row last changed, and a bridge that turns from dynamic to static would
// never re-rank the routes it carries (fig 3.13 prefers static bridges).
func (s *Storage) RefreshBridgeLink(bridge device.Addr, quality int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mob := device.Dynamic
	if be, ok := s.entries[bridge]; ok {
		mob = be.Info.Mobility
	}
	for addr, e := range s.entries {
		changed := false
		for i := range e.Routes {
			r := &e.Routes[i]
			if r.Direct() || r.Bridge != bridge {
				continue
			}
			sum := quality + r.RemoteQualitySum
			minq := min(quality, r.RemoteQualityMin)
			if r.QualitySum != sum || r.QualityMin != minq || r.BridgeMobility != mob {
				r.QualitySum, r.QualityMin = sum, minq
				r.MobilitySum += int(mob) - int(r.BridgeMobility)
				r.BridgeMobility = mob
				changed = true
			}
		}
		if changed {
			s.resortLocked(e)
			s.touchLocked(addr)
		}
	}
}

// mergeCandidateLocked applies one reported row's fig 3.13 comparison: the
// row becomes a candidate route via the reporting bridge with one more jump,
// filtered against self-echoes, relay loops, and the jump cap.
func (s *Storage) mergeCandidateLocked(bridge device.Addr, bridgeQuality int, bridgeMobility device.Mobility, ne phproto.NeighborEntry, now time.Time, res *MergeResult) {
	target := ne.Info.Addr
	switch {
	case s.self[target]:
		// Own device comparison filter (fig 3.13).
		res.Rejected++
		return
	case target == bridge:
		res.Rejected++
		return
	case !ne.Bridge.IsZero() && s.self[ne.Bridge]:
		// The neighbour's route to this device passes through us:
		// adopting it would create a two-hop relay loop.
		res.Rejected++
		return
	}
	jumps := int(ne.Jumps) + 1
	if jumps > s.cfg.MaxJumps {
		res.Rejected++
		return
	}
	route := Route{
		Jumps:            jumps,
		Bridge:           bridge,
		QualitySum:       bridgeQuality + int(ne.QualitySum),
		QualityMin:       min(bridgeQuality, int(ne.QualityMin)),
		BridgeMobility:   bridgeMobility,
		MobilitySum:      int(bridgeMobility) + int(ne.Info.Mobility),
		RemoteQualitySum: int(ne.QualitySum),
		RemoteQualityMin: int(ne.QualityMin),
	}
	e, ok := s.entries[target]
	infoChanged := false
	if !ok {
		e = s.newEntryLocked()
		e.Info = ne.Info.Clone()
		e.LastSeen, e.LastFetched = now, now
		s.entries[target] = e
		res.Added++
		infoChanged = true
	} else {
		res.Updated++
		e.LastSeen = now
		// Prefer the richer descriptor: a bridged report may carry
		// services we have not fetched ourselves yet.
		if len(e.Info.Services) == 0 && len(ne.Info.Services) > 0 {
			e.Info = ne.Info.Clone()
			infoChanged = true
		}
		// Same for sibling knowledge: adopt a report's identity links when
		// we have none for this interface.
		if len(e.Info.Siblings) == 0 && len(ne.Info.Siblings) > 0 {
			e.Info.Siblings = append([]device.Addr(nil), ne.Info.Siblings...)
			infoChanged = true
		}
	}
	// Identity derives from the descriptor alone, so an untouched
	// descriptor cannot change groups — skipping the reindex (and its
	// Identity() string build) on the re-report path is what makes a
	// steady-state merge allocation-free.
	if infoChanged {
		s.reindexIdentityLocked(target, e)
	}
	s.relinkSiblingsLocked(target, e)
	s.putRouteLocked(e, route)
	s.touchLocked(target)
}

// AgeRound applies one discovery loop's aging for tech (fig 3.12):
// responded devices are refreshed elsewhere (UpsertDirect); every other
// direct neighbour of this technology gets "older" and its direct route is
// erased after MaxMissedLoops. Devices left with no routes are removed,
// along with any routes bridged through a device that just lost its direct
// route (we can no longer dial that bridge). Returns the removed addresses
// and the devices whose direct route was erased this round — the
// discoverer must reset its delta-sync state for the latter, because the
// sweep just deleted via-them knowledge their own (unchanged) storage would
// never re-send as a delta.
func (s *Storage) AgeRound(tech device.Tech, responded map[device.Addr]bool) (removed, lostBridges []device.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()

	for addr, e := range s.entries {
		if addr.Tech != tech || !e.HasDirect() || responded[addr] {
			continue
		}
		e.MissedLoops++
		if e.MissedLoops <= s.cfg.MaxMissedLoops {
			continue
		}
		kept := e.Routes[:0]
		for _, r := range e.Routes {
			if r.Direct() {
				continue
			}
			kept = append(kept, r)
		}
		e.Routes = kept
		s.touchLocked(addr)
		lostBridges = append(lostBridges, addr)
	}

	// A device whose direct route vanished can no longer serve as our first
	// hop: drop routes bridged through it.
	for _, bridge := range lostBridges {
		for addr, e := range s.entries {
			dropped := false
			kept := e.Routes[:0]
			for _, r := range e.Routes {
				if r.Bridge == bridge {
					dropped = true
					continue
				}
				kept = append(kept, r)
			}
			e.Routes = kept
			if dropped {
				s.touchLocked(addr)
			}
		}
	}
	for addr, e := range s.entries {
		if len(e.Routes) == 0 {
			s.removeEntryLocked(addr, e)
			s.touchLocked(addr)
			removed = append(removed, addr)
		}
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i].Less(removed[j]) })
	sort.Slice(lostBridges, func(i, j int) bool { return lostBridges[i].Less(lostBridges[j]) })
	return removed, lostBridges
}

// RemoveDirect erases the direct route to a immediately (used when a dial
// to a direct neighbour fails hard).
func (s *Storage) RemoveDirect(a device.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[a]
	if !ok {
		return
	}
	kept := e.Routes[:0]
	for _, r := range e.Routes {
		if r.Direct() {
			continue
		}
		kept = append(kept, r)
	}
	e.Routes = kept
	if len(e.Routes) == 0 {
		s.removeEntryLocked(a, e)
	}
	s.touchLocked(a)
}

// WireEntries renders the storage as the neighbourhood message transmitted
// to inquiring peers: every known device with its best route's metadata
// (§3.3 — sending the whole DeviceStorage is what gives the network total
// environment awareness).
func (s *Storage) WireEntries() []phproto.NeighborEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wireEntriesLocked()
}

func (s *Storage) wireEntriesLocked() []phproto.NeighborEntry {
	out := make([]phproto.NeighborEntry, 0, len(s.entries))
	for _, e := range s.entries {
		en, ok := wireEntryOf(e)
		if !ok {
			continue
		}
		en.Info = en.Info.Clone()
		out = append(out, en)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Info.Addr.Less(out[j].Info.Addr)
	})
	return out
}

// wireEntryOf renders one entry's transmitted form. The Info is NOT cloned —
// callers that let the entry escape the storage lock must clone it.
func wireEntryOf(e *Entry) (phproto.NeighborEntry, bool) {
	best, ok := e.Best()
	if !ok {
		return phproto.NeighborEntry{}, false
	}
	return phproto.NeighborEntry{
		Info:       e.Info,
		Jumps:      uint8(min(best.Jumps, 255)),
		Bridge:     best.Bridge,
		QualitySum: uint32(max(best.QualitySum, 0)),
		QualityMin: uint8(min(max(best.QualityMin, 0), 255)),
	}, true
}

// Versioned delta sync.
//
// touchLocked is the single choke point every mutation above funnels
// through: it re-fingerprints the device's transmitted form and, only if
// that form actually changed, advances the generation, stamps the entry,
// maintains the running table digest, and journals the change. A refresh
// peers cannot observe — LastSeen, an identical re-reported route — leaves
// the generation untouched, which is what makes a static neighbourhood's
// deltas empty.
func (s *Storage) touchLocked(addr device.Addr) {
	var newHash uint64
	visible := false
	if e, ok := s.entries[addr]; ok {
		if en, ok := wireEntryOf(e); ok {
			newHash = en.Hash()
			visible = true
		}
	}
	old, had := s.wireHash[addr]
	if visible == had && (!visible || old == newHash) {
		return
	}
	s.gen++
	if had {
		s.digestHash ^= old
	}
	if visible {
		s.digestHash ^= newHash
		s.wireHash[addr] = newHash
		s.entries[addr].Gen = s.gen
	} else {
		delete(s.wireHash, addr)
	}
	s.journal = append(s.journal, journalRec{gen: s.gen, addr: addr})
	if len(s.journal) > s.cfg.JournalLimit {
		// Forget the older half; peers behind the new floor get FULL.
		drop := len(s.journal) / 2
		s.journal = append(s.journal[:0], s.journal[drop:]...)
		s.journalFloor = s.journal[0].gen - 1
	}
}

// Digest summarises the storage's transmitted state for the sync handshake
// and for observability (phctl digest).
type Digest struct {
	// Epoch identifies this storage instance; it changes on restart, which
	// is how peers detect that the generation counter started over.
	Epoch uint64
	// Gen is the generation of the last wire-visible mutation.
	Gen uint64
	// Entries is the number of wire-visible devices.
	Entries int
	// Hash is the XOR of the per-entry fingerprints (phproto.DigestOf
	// convention over WireEntries).
	Hash uint64
}

// Digest returns the storage's current digest.
func (s *Storage) Digest() Digest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.digestLocked()
}

func (s *Storage) digestLocked() Digest {
	return Digest{Epoch: s.epoch, Gen: s.gen, Entries: len(s.wireHash), Hash: s.digestHash}
}

// Delta is the changed slice of the transmitted table between two
// generations.
type Delta struct {
	// FromGen/ToGen bound the covered change window (FromGen exclusive).
	FromGen, ToGen uint64
	// Entries holds the current transmitted form of every device whose
	// wire row changed in the window.
	Entries []phproto.NeighborEntry
	// Tombstones lists devices that left the table in the window.
	Tombstones []device.Addr
}

// WireEntriesSince returns the changes to the transmitted table since the
// given generation, alongside the current digest. ok is false when the
// journal no longer covers that far back (or the generation is from another
// epoch's future) — the caller must fall back to WireEntries.
//
// It takes the write lock (not RLock): deltaLocked builds its coalescing
// set and sort buffer in the mu-guarded scratch, which makes the common
// "nothing changed" answer allocation-free. Responders serve one sync at a
// time per connection, so the lost read-side sharing is noise next to the
// per-request garbage it removes.
func (s *Storage) WireEntriesSince(gen uint64) (Delta, Digest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delta, ok := s.deltaLocked(gen)
	return delta, s.digestLocked(), ok
}

func (s *Storage) deltaLocked(gen uint64) (Delta, bool) {
	if gen < s.journalFloor || gen > s.gen {
		return Delta{}, false
	}
	delta := Delta{FromGen: gen, ToGen: s.gen}
	if gen == s.gen {
		return delta, true
	}
	// The journal is append-only in generation order: walk the suffix
	// newer than gen and coalesce repeated changes to one row each —
	// the device's *current* state (or a tombstone if it is gone).
	// Both the coalescing set and the sort buffer live in the mu-guarded
	// scratch; only Delta's own slices (which escape to the caller) are
	// allocated per call.
	touched := s.scratch.touched
	if touched == nil {
		touched = make(map[device.Addr]bool)
		s.scratch.touched = touched
	}
	clear(touched)
	for i := len(s.journal) - 1; i >= 0 && s.journal[i].gen > gen; i-- {
		touched[s.journal[i].addr] = true
	}
	if len(touched) > phproto.MaxEntries {
		// A journal larger than the wire's entry cap (Config.JournalLimit
		// above phproto.MaxEntries) can cover windows no frame could
		// carry; serve FULL rather than an undecodable delta.
		return Delta{}, false
	}
	addrs := s.scratch.addrs[:0]
	for a := range touched {
		addrs = append(addrs, a)
	}
	slices.SortFunc(addrs, func(a, b device.Addr) int {
		if a.Less(b) {
			return -1
		}
		if b.Less(a) {
			return 1
		}
		return 0
	})
	s.scratch.addrs = addrs
	for _, a := range addrs {
		if e, ok := s.entries[a]; ok {
			if en, ok := wireEntryOf(e); ok {
				en.Info = en.Info.Clone()
				delta.Entries = append(delta.Entries, en)
				continue
			}
		}
		delta.Tombstones = append(delta.Tombstones, a)
	}
	return delta, true
}

// SyncResponse answers a versioned neighbourhood fetch: a DELTA when the
// epoch matches and the journal covers the requested generation, otherwise
// a FULL table. The daemon's responder calls it directly unless a load
// penalty skews its advertised entries (then it builds phproto.FullSync
// over the penalised rows itself).
//
// extended states whether the fetcher negotiated the sibling-carrying
// entry form. A fetcher that did not cannot decode extended entries, and
// our digest covers them — so when the table holds any, the whole answer
// degrades to a stripped, unsyncable epoch-0 snapshot (the load-penalty
// convention). The check and the render happen under one lock, so a
// concurrent sibling adoption cannot slip an extended entry into a
// legacy-form answer.
func (s *Storage) SyncResponse(epoch, gen uint64, extended bool) *phproto.NeighborhoodSync {
	// Write lock: deltaLocked uses the mu-guarded scratch (see
	// WireEntriesSince).
	s.mu.Lock()
	defer s.mu.Unlock()
	if !extended {
		for addr := range s.wireHash {
			if e, ok := s.entries[addr]; ok && len(e.Info.Siblings) > 0 {
				entries := phproto.StripSiblings(s.wireEntriesLocked())
				if len(entries) > phproto.MaxEntries {
					entries = entries[:phproto.MaxEntries]
				}
				s.syncServedFull.Inc()
				return phproto.FullSync(0, 0, entries)
			}
		}
	}
	if epoch == s.epoch {
		if delta, ok := s.deltaLocked(gen); ok {
			s.syncServedDelta.Inc()
			return &phproto.NeighborhoodSync{
				Epoch:       s.epoch,
				FromGen:     delta.FromGen,
				ToGen:       delta.ToGen,
				Entries:     delta.Entries,
				Tombstones:  delta.Tombstones,
				DigestCount: uint32(len(s.wireHash)),
				DigestHash:  s.digestHash,
			}
		}
	}
	entries := s.wireEntriesLocked()
	if len(entries) > phproto.MaxEntries {
		// A table beyond the wire's entry cap cannot be transmitted whole
		// (deltaLocked refuses over-cap windows for the same reason).
		// Serve the deterministic prefix as an unsyncable epoch-0
		// snapshot — the load-penalty convention — so the peer keeps a
		// partial view instead of choking on an undecodable frame.
		s.syncServedFull.Inc()
		return phproto.FullSync(0, 0, entries[:phproto.MaxEntries])
	}
	// The incremental digest equals DigestOf over the transmitted table
	// (the reconstruction property test checks this every step), so the
	// FULL fallback need not re-hash every entry the way the daemon's
	// load-penalty path — whose advertised entries are skewed — must.
	s.syncServedFull.Inc()
	return &phproto.NeighborhoodSync{
		Full:        true,
		Epoch:       s.epoch,
		ToGen:       s.gen,
		Entries:     entries,
		DigestCount: uint32(len(s.wireHash)),
		DigestHash:  s.digestHash,
	}
}

// AlternateRoutes returns every candidate route to a, best first,
// optionally excluding one first hop (the handover thread excludes the
// currently failing bridge, §5.2.2).
func (s *Storage) AlternateRoutes(a device.Addr, excludeBridge device.Addr) []Route {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[a]
	if !ok {
		return nil
	}
	out := make([]Route, 0, len(e.Routes))
	for _, r := range e.Routes {
		if !excludeBridge.IsZero() && r.Bridge == excludeBridge {
			continue
		}
		out = append(out, r)
	}
	return out
}

// identityOfLocked resolves the device identity of interface a. When a's
// own entry is gone (an aged-out radio), a surviving entry that advertises
// a as a sibling still resolves it: the identity outlives any single
// interface row, which is what lets handover rescue a connection whose
// bearer's entry died while the peer stayed reachable on another radio.
func (s *Storage) identityOfLocked(a device.Addr) (device.ID, bool) {
	if e, ok := s.entries[a]; ok {
		return e.id, true
	}
	for _, se := range s.entries {
		for _, sib := range se.Info.Siblings {
			if sib == a {
				return se.id, true
			}
		}
	}
	return "", false
}

// Siblings returns the stored entries for the other interfaces of a's
// device identity, in address order. A device known through only one
// interface (or a legacy peer that never advertised siblings) has none.
func (s *Storage) Siblings(a device.Addr) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.identityOfLocked(a)
	if !ok {
		return nil
	}
	var out []Entry
	for addr := range s.ids[id] {
		if addr == a {
			continue
		}
		if se, ok := s.entries[addr]; ok {
			out = append(out, se.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Info.Addr.Less(out[j].Info.Addr) })
	return out
}

// Candidate is one identity-aware way to reach a logical peer: a stored
// route to one of its interfaces. Vertical candidates target a sibling
// interface — "same peer, different radio" — and exist only because the
// identity index groups the per-interface rows.
type Candidate struct {
	// Target is the interface address the route reaches.
	Target device.Addr
	// Route is the stored route to Target.
	Route Route
	// Vertical marks a candidate on a sibling interface of the queried one.
	Vertical bool
}

// FirstHop returns the interface the local device must dial to use the
// candidate: the route's bridge, or the target itself when direct. Its
// technology is the radio the local device will actually hold.
func (c Candidate) FirstHop() device.Addr {
	if c.Route.Direct() {
		return c.Target
	}
	return c.Route.Bridge
}

// AlternateRoutesByIdentity is the identity-aware AlternateRoutes: every
// candidate route to a's device — routes to a itself, then routes to each
// sibling interface of its identity — excluding routes whose first hop is
// excludeBridge (the failing bridge of §5.2.2). Routes keep their stored
// best-first order within each interface; cross-candidate ranking is the
// caller's policy decision.
func (s *Storage) AlternateRoutesByIdentity(a device.Addr, excludeBridge device.Addr) []Candidate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.identityOfLocked(a)
	if !ok {
		return nil
	}
	var out []Candidate
	add := func(target device.Addr, entry *Entry, vertical bool) {
		for _, r := range entry.Routes {
			if !excludeBridge.IsZero() && r.Bridge == excludeBridge {
				continue
			}
			out = append(out, Candidate{Target: target, Route: r, Vertical: vertical})
		}
	}
	if e, ok := s.entries[a]; ok {
		add(a, e, false)
	}
	members := make([]device.Addr, 0, len(s.ids[id]))
	for addr := range s.ids[id] {
		if addr != a {
			members = append(members, addr)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Less(members[j]) })
	for _, addr := range members {
		if se, ok := s.entries[addr]; ok {
			add(addr, se, true)
		}
	}
	return out
}

// putRouteLocked installs route as the candidate for its first hop,
// keeping Routes sorted best-first and capped at MaxAlternates.
func (s *Storage) putRouteLocked(e *Entry, route Route) {
	kept := e.Routes[:0]
	for _, r := range e.Routes {
		if r.Bridge == route.Bridge {
			continue // replaced by the fresh report for this first hop
		}
		kept = append(kept, r)
	}
	e.Routes = append(kept, route)
	if !route.Direct() {
		e.forgetEvictedVia(route.Bridge)
	}
	s.resortLocked(e)
	if len(e.Routes) > s.cfg.MaxAlternates {
		for _, r := range e.Routes[s.cfg.MaxAlternates:] {
			if !r.Direct() {
				e.noteEvictedVia(r.Bridge)
			}
		}
		e.Routes = e.Routes[:s.cfg.MaxAlternates]
	}
}

// removeEntryLocked drops a device that ran out of routes, remembering
// which bridges' capacity-evicted routes could have kept it reachable.
// The Entry box is recycled onto the free list: its descriptor is zeroed
// (so the GC can reclaim the old services) but the Routes and evictedVia
// backing arrays are kept for the next add.
func (s *Storage) removeEntryLocked(addr device.Addr, e *Entry) {
	for _, b := range e.evictedVia {
		s.evicted[b] = true
	}
	s.dropIdentityLocked(addr, e.id)
	delete(s.entries, addr)
	*e = Entry{Routes: e.Routes[:0], evictedVia: e.evictedVia[:0]}
	if len(s.free) < maxFreeEntries {
		s.free = append(s.free, e)
	}
}

// newEntryLocked returns a zeroed Entry, recycled from the free list when
// one is available.
func (s *Storage) newEntryLocked() *Entry {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return &Entry{}
}

// TakeEvictedBridges drains and returns the bridges of tech that may still
// reach a device removed since the last call, through a route the
// MaxAlternates cap evicted. The discoverer resets those bridges'
// delta-sync state: the evicted knowledge exists only on our side, so
// nothing short of a full fetch could restore it.
func (s *Storage) TakeEvictedBridges(tech device.Tech) []device.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []device.Addr
	for a := range s.evicted {
		if a.Tech == tech {
			out = append(out, a)
			delete(s.evicted, a)
		}
	}
	return out
}

// resortLocked restores the best-first route order. Routes is capped at
// MaxAlternates (+1 transiently), so a stable insertion sort beats
// sort.SliceStable here: it is branch-cheap at this size and — unlike the
// closure-and-interface machinery of the sort package on a hot path that
// runs once per merged row — performs no allocations.
func (s *Storage) resortLocked(e *Entry) {
	rs := e.Routes
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && s.better(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// better implements the fig 3.13 route comparison: fewer jumps win; ties go
// to the lower (more static) first-hop mobility; then to routes whose every
// hop clears the quality threshold (fig 3.9's equity rule); finally to the
// higher quality sum (§3.4.1). With QualityFirst the mobility and quality
// criteria swap places (ablation A1).
func (s *Storage) better(a, b Route) bool {
	if a.Jumps != b.Jumps {
		return a.Jumps < b.Jumps
	}
	aOK := a.QualityMin >= s.cfg.QualityThreshold
	bOK := b.QualityMin >= s.cfg.QualityThreshold
	if s.cfg.QualityFirst {
		if aOK != bOK {
			return aOK
		}
		if a.QualitySum != b.QualitySum {
			return a.QualitySum > b.QualitySum
		}
		return a.BridgeMobility < b.BridgeMobility
	}
	if a.BridgeMobility != b.BridgeMobility {
		return a.BridgeMobility < b.BridgeMobility
	}
	if aOK != bOK {
		return aOK
	}
	return a.QualitySum > b.QualitySum
}

// CompareRoutes exposes the route ordering for other packages (handover
// picks "the best quality way", fig 5.5 state 0).
func (s *Storage) CompareRoutes(a, b Route) bool { return s.better(a, b) }

// String renders the storage as the thesis' fig 3.6 table for debugging
// and the experiment harness.
func (s *Storage) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-24s %5s  %-24s %7s %6s\n",
		"NAME", "ADDR", "JUMPS", "BRIDGE", "QUALITY", "MOB")
	for _, e := range s.Snapshot() {
		best, ok := e.Best()
		if !ok {
			continue
		}
		bridge := "-"
		if !best.Bridge.IsZero() {
			bridge = best.Bridge.String()
		}
		fmt.Fprintf(&b, "%-16s %-24s %5d  %-24s %7d %6s\n",
			e.Info.Name, e.Info.Addr, best.Jumps, bridge, best.QualitySum, e.Info.Mobility)
	}
	return b.String()
}
