package storage

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/phproto"
	"peerhood/internal/rng"
)

// replica mirrors a peer's view of one storage's transmitted table, applied
// through the same FULL/DELTA messages the wire carries.
type replica struct {
	epoch   uint64
	gen     uint64
	entries map[device.Addr]phproto.NeighborEntry
}

func (r *replica) applyFull(epoch, gen uint64, entries []phproto.NeighborEntry) {
	r.epoch, r.gen = epoch, gen
	r.entries = make(map[device.Addr]phproto.NeighborEntry, len(entries))
	for _, en := range entries {
		r.entries[en.Info.Addr] = en
	}
}

func (r *replica) applyDelta(t *testing.T, d Delta) {
	t.Helper()
	if d.FromGen != r.gen {
		t.Fatalf("delta from gen %d applied to replica at gen %d", d.FromGen, r.gen)
	}
	for _, en := range d.Entries {
		r.entries[en.Info.Addr] = en
	}
	for _, a := range d.Tombstones {
		delete(r.entries, a)
	}
	r.gen = d.ToGen
}

// checkAgainst asserts the replica equals the source's transmitted table and
// that the source's incremental digest equals a from-scratch recomputation.
func (r *replica) checkAgainst(t *testing.T, s *Storage, step int) {
	t.Helper()
	wire := s.WireEntries()
	dg := s.Digest()
	count, hash := phproto.DigestOf(wire)
	if int(count) != dg.Entries || hash != dg.Hash {
		t.Fatalf("step %d: incremental digest (n=%d h=%x) != recomputed (n=%d h=%x)",
			step, dg.Entries, dg.Hash, count, hash)
	}
	if len(r.entries) != len(wire) {
		t.Fatalf("step %d: replica has %d entries, source transmits %d", step, len(r.entries), len(wire))
	}
	for _, en := range wire {
		got, ok := r.entries[en.Info.Addr]
		if !ok {
			t.Fatalf("step %d: replica missing %v", step, en.Info.Addr)
		}
		if !reflect.DeepEqual(got, en) {
			t.Fatalf("step %d: replica row for %v:\n got  %+v\n want %+v", step, en.Info.Addr, got, en)
		}
	}
}

// syncOnce pulls a delta (or a full table when the journal cannot cover the
// gap) from src into r, verifying the advertised digest.
func syncOnce(t *testing.T, src *Storage, r *replica) {
	t.Helper()
	resp := src.SyncResponse(r.epoch, r.gen, true)
	if resp.Full {
		r.applyFull(resp.Epoch, resp.ToGen, resp.Entries)
	} else {
		r.applyDelta(t, Delta{
			FromGen:    resp.FromGen,
			ToGen:      resp.ToGen,
			Entries:    resp.Entries,
			Tombstones: resp.Tombstones,
		})
	}
	count, hash := phproto.DigestOf(mapValues(r.entries))
	if count != resp.DigestCount || hash != resp.DigestHash {
		t.Fatalf("replica digest (n=%d h=%x) != advertised (n=%d h=%x), full=%v",
			count, hash, resp.DigestCount, resp.DigestHash, resp.Full)
	}
}

func mapValues(m map[device.Addr]phproto.NeighborEntry) []phproto.NeighborEntry {
	out := make([]phproto.NeighborEntry, 0, len(m))
	for _, en := range m {
		out = append(out, en)
	}
	return out
}

// TestDeltaChainReconstructsStorage is the delta analogue of the
// grid≡full-scan property test: for any random mutation sequence, a FULL
// fetch followed by a chain of DELTAs reconstructs exactly the table the
// source transmits — including through journal truncation, which must force
// a FULL fallback rather than a wrong delta.
func TestDeltaChainReconstructsStorage(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		for _, journalLimit := range []int{16, DefaultJournalLimit} {
			t.Run(fmt.Sprintf("seed=%d/journal=%d", seed, journalLimit), func(t *testing.T) {
				src := rng.New(seed)
				s := New(Config{Clock: clock.NewManual(), JournalLimit: journalLimit})
				s.AddSelfAddr(btAddr("self"))

				macs := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"}
				addrAt := func(i int) device.Addr { return btAddr(macs[i]) }
				mob := []device.Mobility{device.Static, device.Hybrid, device.Dynamic}

				r := &replica{}
				syncOnce(t, s, r) // first contact: FULL of an empty table
				r.checkAgainst(t, s, -1)

				for step := 0; step < 400; step++ {
					i := src.Intn(len(macs))
					target := addrAt(i)
					switch src.Intn(6) {
					case 0, 1: // direct contact with some quality
						s.UpsertDirect(device.Info{
							Name:     "dev-" + macs[i],
							Addr:     target,
							Mobility: mob[src.Intn(3)],
						}, 200+src.Intn(56))
					case 2: // bridged report
						j := src.Intn(len(macs))
						s.MergeNeighborhood(target, 200+src.Intn(56), []phproto.NeighborEntry{{
							Info:       device.Info{Name: "dev-" + macs[j], Addr: addrAt(j), Mobility: mob[src.Intn(3)]},
							Jumps:      uint8(src.Intn(3)),
							QualitySum: uint32(200 + src.Intn(56)),
							QualityMin: uint8(200 + src.Intn(56)),
						}})
					case 3: // bridge reports an empty table: drops its routes
						s.MergeNeighborhood(target, 200+src.Intn(56), nil)
					case 4: // the device stops answering inquiries
						s.AgeRound(device.TechBluetooth, map[device.Addr]bool{})
					case 5:
						s.RemoveDirect(target)
					}
					if src.Intn(4) == 0 { // sync roughly every 4 mutations
						syncOnce(t, s, r)
						r.checkAgainst(t, s, step)
					}
				}
				syncOnce(t, s, r)
				r.checkAgainst(t, s, 400)
			})
		}
	}
}

func TestUnchangedMutationsDoNotAdvanceGeneration(t *testing.T) {
	s := newTestStorage("self")
	s.UpsertDirect(info("b", "bb", device.Static), 240)
	gen := s.Digest().Gen
	if gen == 0 {
		t.Fatal("first upsert did not advance the generation")
	}
	// Same device, same quality, over and over: peers see nothing new.
	for i := 0; i < 10; i++ {
		s.UpsertDirect(info("b", "bb", device.Static), 240)
	}
	if got := s.Digest().Gen; got != gen {
		t.Fatalf("identical refreshes advanced gen %d -> %d", gen, got)
	}
	s.UpsertDirect(info("b", "bb", device.Static), 250)
	if got := s.Digest().Gen; got <= gen {
		t.Fatal("quality change did not advance the generation")
	}
}

func TestWireEntriesSinceEmptyDelta(t *testing.T) {
	s := newTestStorage("self")
	s.UpsertDirect(info("b", "bb", device.Static), 240)
	dg := s.Digest()
	delta, dg2, ok := s.WireEntriesSince(dg.Gen)
	if !ok {
		t.Fatal("up-to-date generation not coverable")
	}
	if len(delta.Entries) != 0 || len(delta.Tombstones) != 0 {
		t.Fatalf("delta = %+v, want empty", delta)
	}
	if dg2 != dg {
		t.Fatalf("digest changed with no mutation: %+v vs %+v", dg, dg2)
	}
}

func TestWireEntriesSinceProducesTombstone(t *testing.T) {
	s := newTestStorage("self")
	s.UpsertDirect(info("b", "bb", device.Static), 240)
	gen := s.Digest().Gen
	s.RemoveDirect(btAddr("bb"))
	delta, _, ok := s.WireEntriesSince(gen)
	if !ok {
		t.Fatal("journal lost one-mutation history")
	}
	if len(delta.Tombstones) != 1 || delta.Tombstones[0] != btAddr("bb") {
		t.Fatalf("delta = %+v, want tombstone for bb", delta)
	}
}

func TestWireEntriesSinceFutureGenerationRejected(t *testing.T) {
	s := newTestStorage("self")
	s.UpsertDirect(info("b", "bb", device.Static), 240)
	if _, _, ok := s.WireEntriesSince(s.Digest().Gen + 100); ok {
		t.Fatal("a generation from the future was served as a delta")
	}
}

func TestJournalTruncationForcesFull(t *testing.T) {
	s := New(Config{Clock: clock.NewManual(), JournalLimit: 8})
	s.UpsertDirect(info("b", "bb", device.Static), 200)
	gen := s.Digest().Gen
	for q := 201; q < 240; q++ { // 39 distinct changes blow the 8-slot journal
		s.UpsertDirect(info("b", "bb", device.Static), q)
	}
	if _, _, ok := s.WireEntriesSince(gen); ok {
		t.Fatal("truncated journal still claimed to cover an ancient generation")
	}
	resp := s.SyncResponse(s.Digest().Epoch, gen, true)
	if !resp.Full {
		t.Fatalf("SyncResponse = %+v, want FULL fallback", resp)
	}
}

func TestOversizeDeltaFallsBackToFull(t *testing.T) {
	// A journal bigger than the wire's per-frame entry cap can cover more
	// distinct devices than one delta frame may carry; the responder must
	// serve FULL instead of an undecodable delta.
	s := New(Config{Clock: clock.NewManual(), JournalLimit: 3 * phproto.MaxEntries})
	for i := 0; i < phproto.MaxEntries+50; i++ {
		s.UpsertDirect(device.Info{
			Name: fmt.Sprintf("d%05d", i),
			Addr: btAddr(fmt.Sprintf("%05d", i)),
		}, 240)
	}
	if _, _, ok := s.WireEntriesSince(0); ok {
		t.Fatalf("delta covering %d devices claimed to be servable (wire cap %d)",
			phproto.MaxEntries+50, phproto.MaxEntries)
	}
	if resp := s.SyncResponse(s.Digest().Epoch, 0, true); !resp.Full {
		t.Fatal("oversize window not answered with FULL")
	}
}

func TestSyncResponseEpochMismatchForcesFull(t *testing.T) {
	s := newTestStorage("self")
	s.UpsertDirect(info("b", "bb", device.Static), 240)
	resp := s.SyncResponse(s.Digest().Epoch+1, s.Digest().Gen, true)
	if !resp.Full {
		t.Fatal("epoch mismatch (peer restart) answered with a delta")
	}
}

func TestDistinctStoragesHaveDistinctEpochs(t *testing.T) {
	a, b := New(Config{}), New(Config{})
	if a.Digest().Epoch == b.Digest().Epoch {
		t.Fatal("two storages share an epoch")
	}
	if a.Digest().Epoch == 0 {
		t.Fatal("zero epoch would read as first contact on the wire")
	}
}

func TestMergeNeighborhoodDeltaTombstoneDropsBridgedRoute(t *testing.T) {
	s := newTestStorage("self")
	s.UpsertDirect(info("b", "bb", device.Static), 240)
	s.MergeNeighborhoodDelta(btAddr("bb"), 240, []phproto.NeighborEntry{
		{Info: info("c", "cc", device.Dynamic), Jumps: 0, QualitySum: 235, QualityMin: 235},
	}, nil)
	if _, ok := s.Lookup(btAddr("cc")); !ok {
		t.Fatal("delta entry not merged")
	}
	res := s.MergeNeighborhoodDelta(btAddr("bb"), 240, nil, []device.Addr{btAddr("cc")})
	if res.Removed != 1 {
		t.Fatalf("res = %+v, want 1 removed", res)
	}
	if _, ok := s.Lookup(btAddr("cc")); ok {
		t.Fatal("tombstoned device still stored")
	}
}

func TestMergeNeighborhoodDeltaTombstoneKeepsOtherRoutes(t *testing.T) {
	s := newTestStorage("self")
	s.UpsertDirect(info("b", "bb", device.Static), 240)
	s.UpsertDirect(info("c", "cc", device.Dynamic), 235)
	// bb reports it can reach cc; we also see cc directly.
	s.MergeNeighborhoodDelta(btAddr("bb"), 240, []phproto.NeighborEntry{
		{Info: info("c", "cc", device.Dynamic), Jumps: 0, QualitySum: 235, QualityMin: 235},
	}, nil)
	// bb loses cc: only the via-bb route goes, the direct one stays.
	s.MergeNeighborhoodDelta(btAddr("bb"), 240, nil, []device.Addr{btAddr("cc")})
	e, ok := s.Lookup(btAddr("cc"))
	if !ok || !e.HasDirect() {
		t.Fatalf("direct route lost with the tombstone: %+v, %v", e, ok)
	}
	for _, r := range e.Routes {
		if r.Bridge == btAddr("bb") {
			t.Fatalf("via-bb route survived its tombstone: %+v", e.Routes)
		}
	}
}

func TestAgeRoundReportsLostBridges(t *testing.T) {
	s := newTestStorage("self")
	s.UpsertDirect(info("b", "bb", device.Static), 240)
	s.MergeNeighborhood(btAddr("bb"), 240, []phproto.NeighborEntry{
		{Info: info("x", "xx", device.Dynamic), Jumps: 0, QualitySum: 235, QualityMin: 235},
	})
	none := map[device.Addr]bool{}
	var removed, lost []device.Addr
	for i := 0; i <= DefaultMaxMissedLoops; i++ {
		removed, lost = s.AgeRound(device.TechBluetooth, none)
	}
	if len(lost) != 1 || lost[0] != btAddr("bb") {
		t.Fatalf("lost bridges = %v, want [bb]", lost)
	}
	found := false
	for _, a := range removed {
		if a == btAddr("xx") {
			found = true
		}
	}
	if !found {
		t.Fatalf("removed = %v, want xx swept with its bridge", removed)
	}
}

// capEvictionStorage builds a storage where device dd was reported by
// three bridges but MaxAlternates kept only two routes. It returns the
// storage, the evicted route's bridge, and the surviving bridges.
func capEvictionStorage(t *testing.T) (*Storage, device.Addr, []device.Addr) {
	t.Helper()
	s := New(Config{Clock: clock.NewManual(), MaxAlternates: 2})
	s.AddSelfAddr(btAddr("self"))
	bridges := []string{"b1", "b2", "b3"}
	for i, b := range bridges {
		s.UpsertDirect(info(b, b, device.Static), 210+10*i)
		s.MergeNeighborhood(btAddr(b), 210+10*i, []phproto.NeighborEntry{
			{Info: info("d", "dd", device.Static), QualitySum: 200, QualityMin: 200},
		})
	}
	e, ok := s.Lookup(btAddr("dd"))
	if !ok || len(e.Routes) != 2 {
		t.Fatalf("dd entry = %+v (ok=%v), want 2 routes after the cap", e, ok)
	}
	var evicted device.Addr
	var surviving []device.Addr
	for _, b := range bridges {
		kept := false
		for _, r := range e.Routes {
			if r.Bridge == btAddr(b) {
				kept = true
			}
		}
		if kept {
			surviving = append(surviving, btAddr(b))
		} else {
			evicted = btAddr(b)
		}
	}
	if evicted.IsZero() {
		t.Fatalf("no route evicted: %+v", e.Routes)
	}
	return s, evicted, surviving
}

// TestAlternatesCapEvictionReported: a route dropped by the MaxAlternates
// cap is knowledge lost on our side only — the bridge's storage is
// unchanged, so its deltas would never re-offer it. When the device later
// loses its remembered routes, the storage must report the evicted
// bridge so the discoverer resets its sync state and re-learns the route
// from a full fetch. While other routes survive, nothing is reported:
// resetting on every eviction would degrade a dense neighbourhood to
// permanent full sync.
func TestAlternatesCapEvictionReported(t *testing.T) {
	s, evicted, surviving := capEvictionStorage(t)
	if got := s.TakeEvictedBridges(device.TechBluetooth); len(got) != 0 {
		t.Fatalf("evictions reported while dd is still reachable: %v", got)
	}
	// The surviving bridges stop reporting dd; its last routes die.
	for _, b := range surviving {
		s.MergeNeighborhood(b, 220, nil)
	}
	if _, ok := s.Lookup(btAddr("dd")); ok {
		t.Fatal("dd still stored after its bridges dropped it")
	}
	if got := s.TakeEvictedBridges(device.TechWLAN); len(got) != 0 {
		t.Fatalf("wlan evictions from a bluetooth cap: %v", got)
	}
	got := s.TakeEvictedBridges(device.TechBluetooth)
	if len(got) != 1 || got[0] != evicted {
		t.Fatalf("evicted bridges = %v, want [%v]", got, evicted)
	}
	if again := s.TakeEvictedBridges(device.TechBluetooth); len(again) != 0 {
		t.Fatalf("evictions not drained: %v", again)
	}
}

// TestEvictionForgottenWhenBridgeLosesDevice: a tombstone from the evicted
// route's bridge means that bridge no longer reaches the device either —
// removing the device then must not reset the bridge's sync state.
func TestEvictionForgottenWhenBridgeLosesDevice(t *testing.T) {
	s, evicted, surviving := capEvictionStorage(t)
	s.MergeNeighborhoodDelta(evicted, 210, nil, []device.Addr{btAddr("dd")})
	for _, b := range surviving {
		s.MergeNeighborhood(b, 220, nil)
	}
	if _, ok := s.Lookup(btAddr("dd")); ok {
		t.Fatal("dd still stored after its bridges dropped it")
	}
	if got := s.TakeEvictedBridges(device.TechBluetooth); len(got) != 0 {
		t.Fatalf("reset requested for a bridge that tombstoned the device: %v", got)
	}
}

func TestRefreshBridgeLinkTracksLinkDrift(t *testing.T) {
	s := newTestStorage("self")
	s.UpsertDirect(info("b", "bb", device.Static), 240)
	s.MergeNeighborhoodDelta(btAddr("bb"), 240, []phproto.NeighborEntry{
		{Info: info("x", "xx", device.Dynamic), Jumps: 0, QualitySum: 230, QualityMin: 230},
	}, nil)
	e, _ := s.Lookup(btAddr("xx"))
	best, _ := e.Best()
	if best.QualitySum != 470 || best.QualityMin != 230 {
		t.Fatalf("initial route = %+v", best)
	}
	if best.BridgeMobility != device.Static {
		t.Fatalf("initial bridge mobility = %v", best.BridgeMobility)
	}

	// We walk away from bb: its link drops, the peer's table is unchanged
	// (empty delta), but the via-bb route must be re-priced.
	s.RefreshBridgeLink(btAddr("bb"), 180)
	e, _ = s.Lookup(btAddr("xx"))
	best, _ = e.Best()
	if best.QualitySum != 180+230 || best.QualityMin != 180 {
		t.Fatalf("refreshed route = %+v, want sum %d min 180", best, 180+230)
	}

	// Re-pricing is a wire-visible change: peers must hear about it.
	gen := s.Digest().Gen
	s.RefreshBridgeLink(btAddr("bb"), 180) // identical: no-op
	if s.Digest().Gen != gen {
		t.Fatal("identical refresh advanced the generation")
	}
	s.RefreshBridgeLink(btAddr("bb"), 220)
	if s.Digest().Gen <= gen {
		t.Fatal("quality drift did not advance the generation")
	}

	// bb's descriptor turns dynamic: the via-bb route must re-rank the
	// way every full-exchange merge would (fig 3.13 prefers static
	// bridges), even though bb's own table rows are unchanged.
	mobSum := best.MobilitySum
	s.UpdateInfo(info("b", "bb", device.Dynamic))
	s.RefreshBridgeLink(btAddr("bb"), 220)
	e, _ = s.Lookup(btAddr("xx"))
	best, _ = e.Best()
	if best.BridgeMobility != device.Dynamic {
		t.Fatalf("bridge mobility not refreshed: %+v", best)
	}
	if want := mobSum + int(device.Dynamic) - int(device.Static); best.MobilitySum != want {
		t.Fatalf("mobility sum = %d, want %d", best.MobilitySum, want)
	}
}

func TestEntryGenStamped(t *testing.T) {
	s := newTestStorage("self")
	s.UpsertDirect(info("b", "bb", device.Static), 240)
	e, _ := s.Lookup(btAddr("bb"))
	if e.Gen == 0 {
		t.Fatal("entry not stamped with its mutation generation")
	}
	prev := e.Gen
	s.UpsertDirect(info("b", "bb", device.Static), 250)
	e, _ = s.Lookup(btAddr("bb"))
	if e.Gen <= prev {
		t.Fatalf("gen not re-stamped on change: %d -> %d", prev, e.Gen)
	}
}

// TestConcurrentMutationAndSync exercises the versioned paths under the race
// detector: mutators, delta readers, and digest readers in parallel.
func TestConcurrentMutationAndSync(t *testing.T) {
	s := New(Config{Clock: clock.NewManual(), JournalLimit: 64})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(int64(w))
			for i := 0; i < 200; i++ {
				mac := fmt.Sprintf("m%d", src.Intn(8))
				switch src.Intn(3) {
				case 0:
					s.UpsertDirect(device.Info{Name: mac, Addr: btAddr(mac)}, 200+src.Intn(56))
				case 1:
					s.RemoveDirect(btAddr(mac))
				case 2:
					s.AgeRound(device.TechBluetooth, nil)
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var gen uint64
			for i := 0; i < 200; i++ {
				if delta, _, ok := s.WireEntriesSince(gen); ok {
					gen = delta.ToGen
				} else {
					gen = s.Digest().Gen
					s.WireEntries()
				}
			}
		}()
	}
	wg.Wait()
	// After the dust settles the incremental digest must still match a
	// recomputation.
	count, hash := phproto.DigestOf(s.WireEntries())
	dg := s.Digest()
	if int(count) != dg.Entries || hash != dg.Hash {
		t.Fatalf("incremental digest diverged: (n=%d h=%x) vs (n=%d h=%x)", dg.Entries, dg.Hash, count, hash)
	}
}

// TestOversizeTableServedAsTruncatedSnapshot: a table beyond the wire's
// entry cap cannot be transmitted whole. The FULL fallback must serve a
// decodable truncated snapshot under the unsyncable epoch-0 convention —
// not an over-cap frame the fetcher would reject as malformed (and then
// misread as a legacy peer).
func TestOversizeTableServedAsTruncatedSnapshot(t *testing.T) {
	s := newTestStorage("self")
	for i := 0; i < phproto.MaxEntries+1; i++ {
		s.UpsertDirect(info("d", fmt.Sprintf("%05d", i), device.Static), 240)
	}
	resp := s.SyncResponse(0, 0, true)
	if !resp.Full || resp.Epoch != 0 || len(resp.Entries) != phproto.MaxEntries {
		t.Fatalf("full=%v epoch=%d entries=%d, want truncated epoch-0 snapshot",
			resp.Full, resp.Epoch, len(resp.Entries))
	}
	count, hash := phproto.DigestOf(resp.Entries)
	if count != resp.DigestCount || hash != resp.DigestHash {
		t.Fatal("snapshot digest does not cover the transmitted entries")
	}
	var buf bytes.Buffer
	if err := phproto.Write(&buf, resp); err != nil {
		t.Fatalf("encoding truncated snapshot: %v", err)
	}
	if _, err := phproto.ReadExpect[*phproto.NeighborhoodSync](&buf); err != nil {
		t.Fatalf("decoding truncated snapshot: %v", err)
	}
}
