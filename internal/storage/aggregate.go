package storage

import (
	"sort"

	"peerhood/internal/phproto"
)

// Hierarchical (per-cell) views of the transmitted table.
//
// Both responders scan the same wireHash map the flat digest is maintained
// over, so the aggregate view is a pure re-slicing of the existing
// fingerprint state: XOR-ing every cell's Hash yields Digest().Hash, and
// the cell counts sum to Digest().Entries. No additional incremental state
// is kept — the scans are O(entries) on demand, which a sync responder pays
// once per aggregate-scoped fetch.

// CellSummaries renders the per-cell aggregate view of the transmitted
// table: one summary per occupied cell, ascending cell order, plus the flat
// digest the view ties back to.
func (s *Storage) CellSummaries() ([]phproto.CellSummary, Digest) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var cells [phproto.NumAggCells]phproto.CellSummary
	occupied := 0
	for addr, h := range s.wireHash {
		cs := &cells[phproto.CellOf(addr)]
		if cs.Count == 0 {
			occupied++
		}
		cs.Count++
		cs.Hash ^= h
		cs.TechMask |= 1 << uint8(addr.Tech)
		if e, ok := s.entries[addr]; ok {
			if en, ok := wireEntryOf(e); ok {
				if en.QualityMin > cs.BestQuality {
					cs.BestQuality = en.QualityMin
				}
				for _, sib := range en.Info.Siblings {
					cs.TechMask |= 1 << uint8(sib.Tech)
				}
			}
		}
	}
	out := make([]phproto.CellSummary, 0, occupied)
	for i := range cells {
		if cells[i].Count == 0 {
			continue
		}
		cells[i].Cell = uint8(i)
		out = append(out, cells[i])
	}
	return out, s.digestLocked()
}

// CellEntries renders one cell's full rows (address order, Infos cloned)
// with the XOR of their fingerprints, plus the table digest the rows were
// cut from. Rows beyond phproto.MaxEntries are dropped — the hash then
// covers only the transmitted rows and will not match the aggregate view's,
// which a fetcher must treat as "refinement unavailable" (the flat exchange
// truncates the same way).
func (s *Storage) CellEntries(cell uint8) ([]phproto.NeighborEntry, uint64, Digest) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []phproto.NeighborEntry
	var hash uint64
	for addr, e := range s.entries {
		if phproto.CellOf(addr) != cell {
			continue
		}
		h, ok := s.wireHash[addr]
		if !ok {
			continue
		}
		en, ok := wireEntryOf(e)
		if !ok {
			continue
		}
		en.Info = en.Info.Clone()
		out = append(out, en)
		hash ^= h
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Info.Addr.Less(out[j].Info.Addr)
	})
	if len(out) > phproto.MaxEntries {
		out = out[:phproto.MaxEntries]
		hash = 0
		for i := range out {
			hash ^= out[i].Hash()
		}
	}
	return out, hash, s.digestLocked()
}
