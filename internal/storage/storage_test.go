package storage

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/phproto"
)

func btAddr(mac string) device.Addr {
	return device.Addr{Tech: device.TechBluetooth, MAC: mac}
}

func info(name, mac string, mob device.Mobility, svcs ...device.ServiceInfo) device.Info {
	return device.Info{Name: name, Addr: btAddr(mac), Mobility: mob, Services: svcs}
}

func newTestStorage(selfMACs ...string) *Storage {
	s := New(Config{Clock: clock.NewManual()})
	for _, m := range selfMACs {
		s.AddSelfAddr(btAddr(m))
	}
	return s
}

func wireEntry(i device.Info, jumps uint8, bridge device.Addr, qSum uint32, qMin uint8) phproto.NeighborEntry {
	return phproto.NeighborEntry{Info: i, Jumps: jumps, Bridge: bridge, QualitySum: qSum, QualityMin: qMin}
}

func TestUpsertDirectBasic(t *testing.T) {
	s := newTestStorage("self")
	s.UpsertDirect(info("b", "bb", device.Static), 240)
	e, ok := s.Lookup(btAddr("bb"))
	if !ok {
		t.Fatal("entry missing")
	}
	best, ok := e.Best()
	if !ok || !best.Direct() || best.QualitySum != 240 {
		t.Fatalf("best = %+v, %v", best, ok)
	}
	if !e.HasDirect() {
		t.Fatal("HasDirect false")
	}
}

func TestUpsertDirectIgnoresSelf(t *testing.T) {
	s := newTestStorage("self")
	s.UpsertDirect(info("me", "self", device.Dynamic), 250)
	if s.Len() != 0 {
		t.Fatal("stored own device")
	}
}

func TestUpsertDirectRefreshesQuality(t *testing.T) {
	s := newTestStorage("self")
	s.UpsertDirect(info("b", "bb", device.Static), 240)
	s.UpsertDirect(info("b", "bb", device.Static), 200)
	e, _ := s.Lookup(btAddr("bb"))
	best, _ := e.Best()
	if best.QualitySum != 200 {
		t.Fatalf("quality not refreshed: %+v", best)
	}
	if s.Len() != 1 {
		t.Fatalf("duplicate entries: %d", s.Len())
	}
}

// TestFigure36Topology reproduces the worked example of fig 3.6: devices
// A—(B,C)—(D,E) where B also sees D's coverage-mate E and C sees D.
// After merging B's and C's neighbourhoods, A must know every device with
// the exact bridges and jump counts from the thesis' table.
func TestFigure36Topology(t *testing.T) {
	a := newTestStorage("A")
	// A's direct neighbours.
	a.UpsertDirect(info("B", "B", device.Dynamic), 240)
	a.UpsertDirect(info("C", "C", device.Dynamic), 240)
	// B reports: D is B's direct neighbour... in fig 3.6 the awareness of E
	// comes via B and of D via C. B's storage: {A direct, D direct? no —
	// in the figure D is reached through its own coverage}. Per the figure:
	// B knows E (via D's report or directly); the table says A stores
	// E via bridge B with 1 jump, and D via bridge C with 1 jump.
	// One-jump entries mean B reported E as *direct* (jumps 0).
	a.MergeNeighborhood(btAddr("B"), 240, []phproto.NeighborEntry{
		wireEntry(info("E", "E", device.Dynamic), 0, device.Addr{}, 235, 235),
	})
	a.MergeNeighborhood(btAddr("C"), 240, []phproto.NeighborEntry{
		wireEntry(info("D", "D", device.Dynamic), 0, device.Addr{}, 235, 235),
	})

	want := []struct {
		mac    string
		jumps  int
		bridge string // "" = direct
	}{
		{"B", 0, ""},
		{"C", 0, ""},
		{"D", 1, "C"},
		{"E", 1, "B"},
	}
	if s := a.Len(); s != len(want) {
		t.Fatalf("storage has %d entries, want %d:\n%s", s, len(want), a)
	}
	for _, w := range want {
		e, ok := a.Lookup(btAddr(w.mac))
		if !ok {
			t.Fatalf("device %s missing", w.mac)
		}
		best, _ := e.Best()
		if best.Jumps != w.jumps {
			t.Errorf("%s jumps = %d, want %d", w.mac, best.Jumps, w.jumps)
		}
		gotBridge := ""
		if !best.Bridge.IsZero() {
			gotBridge = best.Bridge.MAC
		}
		if gotBridge != w.bridge {
			t.Errorf("%s bridge = %q, want %q", w.mac, gotBridge, w.bridge)
		}
	}
}

// TestFigure39QualityEquity reproduces fig 3.9: two 2-hop routes to D with
// equal quality sums (230+230 vs 210+250); the route whose weakest hop
// clears the 230 threshold must win.
func TestFigure39QualityEquity(t *testing.T) {
	a := newTestStorage("A")
	a.UpsertDirect(info("B", "B", device.Dynamic), 230)
	a.UpsertDirect(info("C", "C", device.Dynamic), 210)
	// B reports D at quality 230; C reports D at quality 250.
	a.MergeNeighborhood(btAddr("B"), 230, []phproto.NeighborEntry{
		wireEntry(info("D", "D", device.Dynamic), 0, device.Addr{}, 230, 230),
	})
	a.MergeNeighborhood(btAddr("C"), 210, []phproto.NeighborEntry{
		wireEntry(info("D", "D", device.Dynamic), 0, device.Addr{}, 250, 250),
	})

	e, ok := a.Lookup(btAddr("D"))
	if !ok {
		t.Fatal("D missing")
	}
	best, _ := e.Best()
	if best.Bridge != btAddr("B") {
		t.Fatalf("best route = %v, want via B (A-C hop 210 < threshold 230)", best)
	}
	if best.QualitySum != 460 || best.QualityMin != 230 {
		t.Fatalf("route aggregates = %+v, want sum 460 min 230", best)
	}
	// Both alternates are remembered.
	alts := a.AlternateRoutes(btAddr("D"), device.Addr{})
	if len(alts) != 2 {
		t.Fatalf("alternates = %d, want 2", len(alts))
	}
}

func TestFewerJumpsBeatQuality(t *testing.T) {
	a := newTestStorage("A")
	a.UpsertDirect(info("B", "B", device.Static), 250)
	// Learn D via B at 2 jumps with stellar quality...
	a.MergeNeighborhood(btAddr("B"), 250, []phproto.NeighborEntry{
		wireEntry(info("D", "D", device.Static), 1, btAddr("X"), 500, 250),
	})
	// ...then D walks into direct coverage with weak quality.
	a.UpsertDirect(info("D", "D", device.Static), 190)
	e, _ := a.Lookup(btAddr("D"))
	best, _ := e.Best()
	if !best.Direct() {
		t.Fatalf("best = %v, want direct (fewer jumps always wins)", best)
	}
}

func TestStaticBridgePreferredOverDynamic(t *testing.T) {
	// §3.4.3: static devices are preferred as bridges so they become the
	// network backbone.
	a := newTestStorage("A")
	a.UpsertDirect(info("stat", "S", device.Static), 235)
	a.UpsertDirect(info("dyn", "Y", device.Dynamic), 235)
	target := info("T", "T", device.Static)
	a.MergeNeighborhood(btAddr("Y"), 235, []phproto.NeighborEntry{
		wireEntry(target, 0, device.Addr{}, 250, 250),
	})
	a.MergeNeighborhood(btAddr("S"), 235, []phproto.NeighborEntry{
		wireEntry(target, 0, device.Addr{}, 235, 235),
	})
	e, _ := a.Lookup(btAddr("T"))
	best, _ := e.Best()
	if best.Bridge != btAddr("S") {
		t.Fatalf("best bridge = %v, want the static one despite lower quality", best.Bridge)
	}
	if best.BridgeMobility != device.Static {
		t.Fatalf("bridge mobility = %v", best.BridgeMobility)
	}
}

func TestOwnDeviceEchoFiltered(t *testing.T) {
	a := newTestStorage("A")
	a.UpsertDirect(info("B", "B", device.Dynamic), 240)
	res := a.MergeNeighborhood(btAddr("B"), 240, []phproto.NeighborEntry{
		wireEntry(info("A", "A", device.Dynamic), 0, device.Addr{}, 240, 240), // us
		wireEntry(info("B", "B", device.Dynamic), 0, device.Addr{}, 255, 255), // the bridge itself
	})
	if res.Rejected != 2 || res.Added != 0 {
		t.Fatalf("merge result = %+v, want 2 rejections", res)
	}
	if a.Len() != 1 {
		t.Fatalf("entries = %d, want 1 (just B)", a.Len())
	}
}

func TestTwoHopLoopFiltered(t *testing.T) {
	// B's route to T goes through us; adopting it would loop A->B->A.
	a := newTestStorage("A")
	a.UpsertDirect(info("B", "B", device.Dynamic), 240)
	res := a.MergeNeighborhood(btAddr("B"), 240, []phproto.NeighborEntry{
		wireEntry(info("T", "T", device.Dynamic), 1, btAddr("A"), 480, 240),
	})
	if res.Rejected != 1 {
		t.Fatalf("merge result = %+v, want 1 rejection", res)
	}
	if _, ok := a.Lookup(btAddr("T")); ok {
		t.Fatal("loop route stored")
	}
}

func TestJumpCapRejectsLongRoutes(t *testing.T) {
	s := New(Config{Clock: clock.NewManual(), MaxJumps: 2})
	s.AddSelfAddr(btAddr("A"))
	s.UpsertDirect(info("B", "B", device.Static), 240)
	res := s.MergeNeighborhood(btAddr("B"), 240, []phproto.NeighborEntry{
		wireEntry(info("far", "F", device.Static), 2, btAddr("X"), 700, 230), // would be 3 jumps
		wireEntry(info("ok", "O", device.Static), 1, btAddr("X"), 470, 230),  // becomes 2 jumps
	})
	if res.Added != 1 || res.Rejected != 1 {
		t.Fatalf("merge result = %+v", res)
	}
	if _, ok := s.Lookup(btAddr("F")); ok {
		t.Fatal("over-cap route stored")
	}
}

func TestMergeRemovesRoutesBridgeStoppedReporting(t *testing.T) {
	a := newTestStorage("A")
	a.UpsertDirect(info("B", "B", device.Static), 240)
	a.MergeNeighborhood(btAddr("B"), 240, []phproto.NeighborEntry{
		wireEntry(info("T", "T", device.Static), 0, device.Addr{}, 240, 240),
	})
	if _, ok := a.Lookup(btAddr("T")); !ok {
		t.Fatal("T not learned")
	}
	// Next round B reports an empty neighbourhood: T moved away from B.
	res := a.MergeNeighborhood(btAddr("B"), 240, nil)
	if res.Removed != 1 {
		t.Fatalf("merge result = %+v, want 1 removal", res)
	}
	if _, ok := a.Lookup(btAddr("T")); ok {
		t.Fatal("stale bridged route survived")
	}
}

func TestAgeRoundErasesAfterMaxMissedLoops(t *testing.T) {
	s := New(Config{Clock: clock.NewManual(), MaxMissedLoops: 2})
	s.AddSelfAddr(btAddr("A"))
	s.UpsertDirect(info("B", "B", device.Dynamic), 240)

	none := map[device.Addr]bool{}
	if removed, _ := s.AgeRound(device.TechBluetooth, none); len(removed) != 0 {
		t.Fatalf("removed after 1 miss: %v", removed)
	}
	if removed, _ := s.AgeRound(device.TechBluetooth, none); len(removed) != 0 {
		t.Fatalf("removed after 2 misses: %v", removed)
	}
	removed, _ := s.AgeRound(device.TechBluetooth, none)
	if len(removed) != 1 || removed[0] != btAddr("B") {
		t.Fatalf("removed = %v, want [B] after exceeding MaxMissedLoops", removed)
	}
	if s.Len() != 0 {
		t.Fatal("entry survived")
	}
}

func TestAgeRoundResponseResetsCounter(t *testing.T) {
	s := New(Config{Clock: clock.NewManual(), MaxMissedLoops: 2})
	s.AddSelfAddr(btAddr("A"))
	s.UpsertDirect(info("B", "B", device.Dynamic), 240)
	none := map[device.Addr]bool{}
	s.AgeRound(device.TechBluetooth, none)
	s.AgeRound(device.TechBluetooth, none)
	// B responds: UpsertDirect resets MissedLoops.
	s.UpsertDirect(info("B", "B", device.Dynamic), 230)
	for i := 0; i < 2; i++ {
		if removed, _ := s.AgeRound(device.TechBluetooth, none); len(removed) != 0 {
			t.Fatalf("round %d removed %v after reset", i, removed)
		}
	}
}

func TestAgeRoundCascadesThroughLostBridge(t *testing.T) {
	s := New(Config{Clock: clock.NewManual(), MaxMissedLoops: 1})
	s.AddSelfAddr(btAddr("A"))
	s.UpsertDirect(info("B", "B", device.Dynamic), 240)
	s.MergeNeighborhood(btAddr("B"), 240, []phproto.NeighborEntry{
		wireEntry(info("T", "T", device.Dynamic), 0, device.Addr{}, 240, 240),
	})
	none := map[device.Addr]bool{}
	s.AgeRound(device.TechBluetooth, none) // miss 1
	removed, _ := s.AgeRound(device.TechBluetooth, none)
	if len(removed) != 2 {
		t.Fatalf("removed = %v, want B and T (route via lost bridge)", removed)
	}
}

func TestAgeRoundKeepsBridgedEntryWhenDirectLost(t *testing.T) {
	// A device that left direct coverage but is still reachable via a
	// bridge must stay known — that is the whole point of ch. 3.
	s := New(Config{Clock: clock.NewManual(), MaxMissedLoops: 1})
	s.AddSelfAddr(btAddr("A"))
	s.UpsertDirect(info("B", "B", device.Static), 240)
	s.UpsertDirect(info("T", "T", device.Dynamic), 235)
	s.MergeNeighborhood(btAddr("B"), 240, []phproto.NeighborEntry{
		wireEntry(info("T", "T", device.Dynamic), 0, device.Addr{}, 238, 238),
	})
	// T stops answering inquiries; B keeps answering.
	responded := map[device.Addr]bool{btAddr("B"): true}
	s.AgeRound(device.TechBluetooth, responded)
	s.AgeRound(device.TechBluetooth, responded)
	e, ok := s.Lookup(btAddr("T"))
	if !ok {
		t.Fatal("T fully removed although a bridged route existed")
	}
	if e.HasDirect() {
		t.Fatal("direct route survived aging")
	}
	best, _ := e.Best()
	if best.Bridge != btAddr("B") || best.Jumps != 1 {
		t.Fatalf("best = %+v, want 1 jump via B", best)
	}
}

func TestAgeRoundOnlyAgesMatchingTech(t *testing.T) {
	s := New(Config{Clock: clock.NewManual(), MaxMissedLoops: 1})
	s.UpsertDirect(info("B", "B", device.Dynamic), 240)
	wl := device.Info{Name: "w", Addr: device.Addr{Tech: device.TechWLAN, MAC: "W"}}
	s.UpsertDirect(wl, 240)
	none := map[device.Addr]bool{}
	s.AgeRound(device.TechBluetooth, none)
	s.AgeRound(device.TechBluetooth, none)
	if _, ok := s.Lookup(wl.Addr); !ok {
		t.Fatal("aging BT rounds removed a WLAN entry")
	}
	if _, ok := s.Lookup(btAddr("B")); ok {
		t.Fatal("BT entry survived")
	}
}

func TestRemoveDirect(t *testing.T) {
	s := newTestStorage("A")
	s.UpsertDirect(info("B", "B", device.Dynamic), 240)
	s.RemoveDirect(btAddr("B"))
	if s.Len() != 0 {
		t.Fatal("entry survived RemoveDirect")
	}
	// Removing a missing entry is a no-op.
	s.RemoveDirect(btAddr("nope"))
}

func TestFindServiceOrdersByRoute(t *testing.T) {
	s := newTestStorage("A")
	svc := device.ServiceInfo{Name: "analysis", Port: 12}
	s.UpsertDirect(info("near", "N", device.Static, svc), 240)
	s.UpsertDirect(info("B", "B", device.Static), 240)
	s.MergeNeighborhood(btAddr("B"), 240, []phproto.NeighborEntry{
		wireEntry(info("far", "F", device.Static, svc), 0, device.Addr{}, 240, 240),
	})
	got := s.FindService("analysis")
	if len(got) != 2 {
		t.Fatalf("providers = %d, want 2", len(got))
	}
	if got[0].Entry.Info.Name != "near" {
		t.Fatalf("first provider = %s, want the direct one", got[0].Entry.Info.Name)
	}
	if got[0].Service.Port != 12 {
		t.Fatalf("service port = %d", got[0].Service.Port)
	}
	if s.FindService("missing") != nil {
		t.Fatal("found a missing service")
	}
}

func TestFindByName(t *testing.T) {
	s := newTestStorage("A")
	s.UpsertDirect(info("laptop", "L", device.Hybrid), 240)
	if e, ok := s.FindByName("laptop"); !ok || e.Info.Addr != btAddr("L") {
		t.Fatalf("FindByName = %+v, %v", e, ok)
	}
	if _, ok := s.FindByName("ghost"); ok {
		t.Fatal("found a ghost")
	}
}

func TestWireEntriesRoundTripThroughMerge(t *testing.T) {
	// B's WireEntries fed into A's merge must produce jumps+1 routes via B:
	// the recursion that yields total environment awareness (§3.3).
	b := newTestStorage("B")
	b.UpsertDirect(info("D", "D", device.Static), 231)
	b.UpsertDirect(info("E", "E", device.Dynamic), 236)

	a := newTestStorage("A")
	a.UpsertDirect(info("B", "B", device.Hybrid), 233)
	a.MergeNeighborhood(btAddr("B"), 233, b.WireEntries())

	for _, mac := range []string{"D", "E"} {
		e, ok := a.Lookup(btAddr(mac))
		if !ok {
			t.Fatalf("%s not learned", mac)
		}
		best, _ := e.Best()
		if best.Jumps != 1 || best.Bridge != btAddr("B") {
			t.Errorf("%s route = %+v", mac, best)
		}
	}
	// Quality propagation: sum = our link to B + B's link to D.
	e, _ := a.Lookup(btAddr("D"))
	best, _ := e.Best()
	if best.QualitySum != 233+231 || best.QualityMin != 231 {
		t.Fatalf("quality aggregates = %+v", best)
	}
}

func TestNeedsFetchServiceCheckInterval(t *testing.T) {
	clk := clock.NewManual()
	s := New(Config{Clock: clk})
	addr := btAddr("B")
	if !s.NeedsFetch(addr, time.Minute) {
		t.Fatal("unknown device does not need fetch")
	}
	s.UpsertDirect(info("B", "B", device.Dynamic), 240)
	if !s.NeedsFetch(addr, time.Minute) {
		t.Fatal("never-fetched device does not need fetch")
	}
	s.UpdateInfo(info("B", "B", device.Dynamic))
	if s.NeedsFetch(addr, time.Minute) {
		t.Fatal("freshly fetched device needs fetch")
	}
	clk.Advance(2 * time.Minute)
	if !s.NeedsFetch(addr, time.Minute) {
		t.Fatal("stale device does not need fetch")
	}
}

func TestUpdateInfoRefreshesMobilityOnDirectRoute(t *testing.T) {
	s := newTestStorage("A")
	s.UpsertDirect(device.Info{Name: "", Addr: btAddr("B")}, 240) // partial: mobility unknown (static default)
	s.UpdateInfo(info("B", "B", device.Dynamic))
	e, _ := s.Lookup(btAddr("B"))
	best, _ := e.Best()
	if best.BridgeMobility != device.Dynamic {
		t.Fatalf("direct route mobility = %v, want dynamic after fetch", best.BridgeMobility)
	}
	if e.Info.Name != "B" {
		t.Fatalf("info not updated: %+v", e.Info)
	}
}

func TestUpdateInfoUnknownDeviceNoop(t *testing.T) {
	s := newTestStorage("A")
	s.UpdateInfo(info("ghost", "G", device.Static))
	if s.Len() != 0 {
		t.Fatal("UpdateInfo created an entry")
	}
}

func TestAlternateRoutesExcludesBridge(t *testing.T) {
	a := newTestStorage("A")
	a.UpsertDirect(info("B", "B", device.Static), 240)
	a.UpsertDirect(info("C", "C", device.Static), 240)
	target := info("T", "T", device.Static)
	a.MergeNeighborhood(btAddr("B"), 240, []phproto.NeighborEntry{
		wireEntry(target, 0, device.Addr{}, 240, 240),
	})
	a.MergeNeighborhood(btAddr("C"), 240, []phproto.NeighborEntry{
		wireEntry(target, 0, device.Addr{}, 240, 240),
	})
	all := a.AlternateRoutes(btAddr("T"), device.Addr{})
	if len(all) != 2 {
		t.Fatalf("alternates = %d, want 2", len(all))
	}
	noB := a.AlternateRoutes(btAddr("T"), btAddr("B"))
	if len(noB) != 1 || noB[0].Bridge != btAddr("C") {
		t.Fatalf("excluded alternates = %+v", noB)
	}
	if a.AlternateRoutes(btAddr("ghost"), device.Addr{}) != nil {
		t.Fatal("alternates for unknown device")
	}
}

func TestMaxAlternatesCapped(t *testing.T) {
	s := New(Config{Clock: clock.NewManual(), MaxAlternates: 3})
	s.AddSelfAddr(btAddr("A"))
	target := info("T", "T", device.Static)
	for i := 0; i < 6; i++ {
		bmac := string(rune('B' + i))
		s.UpsertDirect(info(bmac, bmac, device.Static), 240)
		s.MergeNeighborhood(btAddr(bmac), 240, []phproto.NeighborEntry{
			wireEntry(target, 0, device.Addr{}, uint32(230+i), uint8(230+i)),
		})
	}
	alts := s.AlternateRoutes(btAddr("T"), device.Addr{})
	if len(alts) != 3 {
		t.Fatalf("alternates = %d, want cap 3", len(alts))
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	s := newTestStorage("A")
	s.UpsertDirect(info("B", "B", device.Static, device.ServiceInfo{Name: "x", Port: 10}), 240)
	snap := s.Snapshot()
	snap[0].Info.Services[0].Name = "mutated"
	snap[0].Routes[0].QualitySum = -1
	e, _ := s.Lookup(btAddr("B"))
	if e.Info.Services[0].Name != "x" {
		t.Fatal("snapshot aliases stored services")
	}
	if r, _ := e.Best(); r.QualitySum != 240 {
		t.Fatal("snapshot aliases stored routes")
	}
}

func TestStringRendersTable(t *testing.T) {
	s := newTestStorage("A")
	s.UpsertDirect(info("B", "B", device.Static), 240)
	out := s.String()
	if !strings.Contains(out, "B") || !strings.Contains(out, "JUMPS") {
		t.Fatalf("table output missing columns:\n%s", out)
	}
}

func TestSelfAddrRemovesExistingEntry(t *testing.T) {
	s := newTestStorage()
	s.UpsertDirect(info("me", "M", device.Static), 240)
	s.AddSelfAddr(btAddr("M"))
	if s.Len() != 0 {
		t.Fatal("own entry survived AddSelfAddr")
	}
	if !s.IsSelf(btAddr("M")) {
		t.Fatal("IsSelf false")
	}
}

func TestRouteOrderingProperties(t *testing.T) {
	s := newTestStorage("A")
	mkRoute := func(jumps, mob, qmin, qsum uint8) Route {
		m := device.Static
		switch mob % 3 {
		case 1:
			m = device.Hybrid
		case 2:
			m = device.Dynamic
		}
		return Route{
			Jumps:          int(jumps%5) + 1,
			Bridge:         btAddr("X"),
			QualitySum:     int(qsum) * 2,
			QualityMin:     int(qmin),
			BridgeMobility: m,
		}
	}
	// Irreflexivity and asymmetry of the strict ordering.
	if err := quick.Check(func(j1, m1, n1, s1, j2, m2, n2, s2 uint8) bool {
		a, b := mkRoute(j1, m1, n1, s1), mkRoute(j2, m2, n2, s2)
		if s.CompareRoutes(a, a) || s.CompareRoutes(b, b) {
			return false
		}
		return !(s.CompareRoutes(a, b) && s.CompareRoutes(b, a))
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Fewer jumps always dominates.
	if err := quick.Check(func(m1, n1, s1, m2, n2, s2 uint8) bool {
		a, b := mkRoute(0, m1, n1, s1), mkRoute(1, m2, n2, s2)
		a.Jumps, b.Jumps = 1, 2
		return s.CompareRoutes(a, b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBestRouteIsMaximalAmongAlternates(t *testing.T) {
	// Property: after arbitrary merges, Best() is never beaten by any
	// stored alternate.
	if err := quick.Check(func(seed uint8, qualities []uint8) bool {
		s := newTestStorage("A")
		target := info("T", "T", device.Static)
		n := len(qualities)
		if n > 6 {
			n = 6
		}
		for i := 0; i < n; i++ {
			bmac := string(rune('B' + i))
			q := 180 + int(qualities[i])%76
			s.UpsertDirect(info(bmac, bmac, device.Mobility([]device.Mobility{device.Static, device.Hybrid, device.Dynamic}[int(qualities[i])%3])), q)
			s.MergeNeighborhood(btAddr(bmac), q, []phproto.NeighborEntry{
				wireEntry(target, 0, device.Addr{}, uint32(q), uint8(q)),
			})
		}
		e, ok := s.Lookup(btAddr("T"))
		if !ok {
			return n == 0
		}
		best, _ := e.Best()
		for _, alt := range e.Routes {
			if s.CompareRoutes(alt, best) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeResultCounts(t *testing.T) {
	a := newTestStorage("A")
	a.UpsertDirect(info("B", "B", device.Static), 240)
	res := a.MergeNeighborhood(btAddr("B"), 240, []phproto.NeighborEntry{
		wireEntry(info("T", "T", device.Static), 0, device.Addr{}, 240, 240),
		wireEntry(info("A", "A", device.Static), 0, device.Addr{}, 240, 240),
	})
	if res.Added != 1 || res.Rejected != 1 || res.Updated != 0 {
		t.Fatalf("first merge = %+v", res)
	}
	res = a.MergeNeighborhood(btAddr("B"), 240, []phproto.NeighborEntry{
		wireEntry(info("T", "T", device.Static), 0, device.Addr{}, 238, 238),
	})
	if res.Updated != 1 || res.Added != 0 {
		t.Fatalf("second merge = %+v", res)
	}
}

func TestBridgedReportFillsMissingServices(t *testing.T) {
	a := newTestStorage("A")
	a.UpsertDirect(info("B", "B", device.Static), 240)
	a.UpsertDirect(device.Info{Name: "T", Addr: btAddr("T")}, 235) // no services yet
	svc := device.ServiceInfo{Name: "print", Port: 11}
	a.MergeNeighborhood(btAddr("B"), 240, []phproto.NeighborEntry{
		wireEntry(info("T", "T", device.Static, svc), 0, device.Addr{}, 238, 238),
	})
	e, _ := a.Lookup(btAddr("T"))
	if _, ok := e.Info.FindService("print"); !ok {
		t.Fatal("bridged service report not adopted")
	}
}
