package storage

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/phproto"
)

// TestCellViewsPartitionTheTable is the aggregation property at the
// storage layer: over a table with direct rows, bridged rows, and sibling
// advertisements, the cell summaries must partition the flat digest
// exactly — counts sum to the entry count, hashes XOR to the table hash —
// and the per-cell row sets must union, disjointly, to WireEntries.
func TestCellViewsPartitionTheTable(t *testing.T) {
	s := New(Config{Clock: clock.NewManual()})
	s.AddSelfAddr(device.Addr{Tech: device.TechBluetooth, MAC: "self"})
	for i := 0; i < 80; i++ {
		name := fmt.Sprintf("n%03d", i)
		info := device.Info{Name: name, Addr: device.Addr{Tech: device.Tech(1 + i%3), MAC: name}}
		if i%4 == 0 {
			info.Siblings = []device.Addr{{Tech: device.TechWLAN, MAC: name + "-w"}}
		}
		s.UpsertDirect(info, 190+i%66)
	}
	// A few bridged rows so jumps > 0 shapes are covered too.
	bridge := device.Addr{Tech: device.TechBluetooth, MAC: "n000"}
	s.MergeNeighborhood(bridge, 240, []phproto.NeighborEntry{
		{Info: device.Info{Name: "far1", Addr: device.Addr{Tech: device.TechGPRS, MAC: "far1"}}, QualitySum: 200, QualityMin: 200},
		{Info: device.Info{Name: "far2", Addr: device.Addr{Tech: device.TechWLAN, MAC: "far2"}}, Jumps: 1, Bridge: bridge, QualitySum: 400, QualityMin: 180},
	})

	dg := s.Digest()
	cells, cdg := s.CellSummaries()
	if cdg != dg {
		t.Fatalf("CellSummaries digest %+v != Digest() %+v", cdg, dg)
	}
	var count uint32
	var hash uint64
	lastCell := -1
	for _, cs := range cells {
		if int(cs.Cell) <= lastCell {
			t.Fatalf("cells not in ascending order: %d after %d", cs.Cell, lastCell)
		}
		lastCell = int(cs.Cell)
		if cs.Count == 0 {
			t.Fatalf("empty cell %d listed", cs.Cell)
		}
		count += cs.Count
		hash ^= cs.Hash
	}
	if int(count) != dg.Entries || hash != dg.Hash {
		t.Fatalf("cells sum to (n=%d h=%x), table digest is (n=%d h=%x)", count, hash, dg.Entries, dg.Hash)
	}

	var union []phproto.NeighborEntry
	for _, cs := range cells {
		rows, rowHash, _ := s.CellEntries(cs.Cell)
		if uint32(len(rows)) != cs.Count || rowHash != cs.Hash {
			t.Fatalf("cell %d rows (n=%d h=%x) != summary (n=%d h=%x)",
				cs.Cell, len(rows), rowHash, cs.Count, cs.Hash)
		}
		var mask uint8
		var best uint8
		for _, en := range rows {
			if got := phproto.CellOf(en.Info.Addr); got != cs.Cell {
				t.Fatalf("row %v in cell %d hashes to %d", en.Info.Addr, cs.Cell, got)
			}
			mask |= 1 << uint8(en.Info.Addr.Tech)
			for _, sib := range en.Info.Siblings {
				mask |= 1 << uint8(sib.Tech)
			}
			if en.QualityMin > best {
				best = en.QualityMin
			}
		}
		if mask != cs.TechMask || best != cs.BestQuality {
			t.Fatalf("cell %d summary (mask=%b best=%d) != rows (mask=%b best=%d)",
				cs.Cell, cs.TechMask, cs.BestQuality, mask, best)
		}
		union = append(union, rows...)
	}
	sort.Slice(union, func(i, j int) bool { return union[i].Info.Addr.Less(union[j].Info.Addr) })
	if full := s.WireEntries(); !reflect.DeepEqual(union, full) {
		t.Fatalf("union of cell rows (%d) != WireEntries (%d)", len(union), len(full))
	}

	// Empty cells answer empty, hash zero, same digest.
	for c := 0; c < phproto.NumAggCells; c++ {
		occupied := false
		for _, cs := range cells {
			if int(cs.Cell) == c {
				occupied = true
			}
		}
		if occupied {
			continue
		}
		rows, rowHash, _ := s.CellEntries(uint8(c))
		if len(rows) != 0 || rowHash != 0 {
			t.Fatalf("unoccupied cell %d served %d rows (hash %x)", c, len(rows), rowHash)
		}
	}
}
