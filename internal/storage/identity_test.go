package storage

import (
	"testing"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/phproto"
)

func wlanAddr(mac string) device.Addr { return device.Addr{Tech: device.TechWLAN, MAC: mac} }
func gprsAddr(mac string) device.Addr { return device.Addr{Tech: device.TechGPRS, MAC: mac} }

// TestIdentityGroupsInterfaces: two interfaces advertising each other as
// siblings group under one identity, queryable from either side, and the
// identity-aware route listing marks the sibling's routes vertical.
func TestIdentityGroupsInterfaces(t *testing.T) {
	s := New(Config{Clock: clock.NewManual()})
	wl, gp := wlanAddr("W1"), gprsAddr("G1")

	s.UpsertDirect(device.Info{Name: "dual", Addr: wl, Siblings: []device.Addr{gp}}, 240)
	s.UpsertDirect(device.Info{Name: "dual", Addr: gp, Siblings: []device.Addr{wl}}, 235)

	we, _ := s.Lookup(wl)
	ge, _ := s.Lookup(gp)
	if we.Identity() != ge.Identity() || we.Identity() == "" {
		t.Fatalf("identities differ: %q vs %q", we.Identity(), ge.Identity())
	}
	sibs := s.Siblings(wl)
	if len(sibs) != 1 || sibs[0].Info.Addr != gp {
		t.Fatalf("Siblings(wlan) = %v", sibs)
	}

	cands := s.AlternateRoutesByIdentity(wl, device.Addr{})
	var direct, vertical int
	for _, c := range cands {
		if c.Vertical {
			vertical++
			if c.Target != gp {
				t.Fatalf("vertical candidate targets %v", c.Target)
			}
		} else {
			direct++
		}
	}
	if direct != 1 || vertical != 1 {
		t.Fatalf("candidates = %v, want one direct and one vertical", cands)
	}
}

// TestIdentityRelinksOneSidedKnowledge: an interface learned without
// sibling info (a legacy-path report) is re-linked when its sibling's
// descriptor arrives naming it.
func TestIdentityRelinksOneSidedKnowledge(t *testing.T) {
	s := New(Config{Clock: clock.NewManual()})
	wl, gp := wlanAddr("W1"), gprsAddr("G1")

	// GPRS row first, with no sibling knowledge: a singleton identity.
	s.UpsertDirect(device.Info{Name: "dual", Addr: gp}, 235)
	// The WLAN row arrives naming the GPRS interface: both must re-group,
	// whichever address happens to be the canonical one.
	s.UpsertDirect(device.Info{Name: "dual", Addr: wl, Siblings: []device.Addr{gp}}, 240)

	if sibs := s.Siblings(gp); len(sibs) != 1 || sibs[0].Info.Addr != wl {
		t.Fatalf("Siblings(gprs) = %v after relink", sibs)
	}
	ge, _ := s.Lookup(gp)
	if len(ge.Info.Siblings) != 1 || ge.Info.Siblings[0] != wl {
		t.Fatalf("reciprocal sibling not back-filled: %v", ge.Info.Siblings)
	}
}

// TestIdentitySurvivesInterfaceDeath: when an interface's own row dies,
// the identity still resolves through a surviving sibling that advertises
// it — the lookup path that lets handover rescue a connection whose
// bearer aged out.
func TestIdentitySurvivesInterfaceDeath(t *testing.T) {
	s := New(Config{Clock: clock.NewManual()})
	wl, gp := wlanAddr("W1"), gprsAddr("G1")
	s.UpsertDirect(device.Info{Name: "dual", Addr: wl, Siblings: []device.Addr{gp}}, 240)
	s.UpsertDirect(device.Info{Name: "dual", Addr: gp, Siblings: []device.Addr{wl}}, 235)

	s.RemoveDirect(wl)
	if _, ok := s.Lookup(wl); ok {
		t.Fatal("wlan row survived RemoveDirect")
	}
	cands := s.AlternateRoutesByIdentity(wl, device.Addr{})
	if len(cands) != 1 || !cands[0].Vertical || cands[0].Target != gp {
		t.Fatalf("dead-interface candidates = %v, want the GPRS sibling", cands)
	}
	if sibs := s.Siblings(wl); len(sibs) != 1 || sibs[0].Info.Addr != gp {
		t.Fatalf("Siblings(dead wlan) = %v", sibs)
	}
}

// TestSyncResponseLegacyDegradesOnSiblings: a fetcher that did not
// negotiate the extended entry form gets the normal versioned answer
// while the table is sibling-free, and a stripped unsyncable epoch-0
// snapshot once any row carries siblings — decided atomically with the
// render, so no concurrent adoption can leak an extended entry.
func TestSyncResponseLegacyDegradesOnSiblings(t *testing.T) {
	s := New(Config{Clock: clock.NewManual()})
	s.UpsertDirect(device.Info{Name: "plain", Addr: wlanAddr("P1")}, 240)

	resp := s.SyncResponse(s.Digest().Epoch, s.Digest().Gen, false)
	if !resp.Full && resp.Epoch != s.Digest().Epoch {
		t.Fatalf("sibling-free legacy answer lost sync: %+v", resp)
	}
	if resp.Epoch == 0 {
		t.Fatalf("sibling-free table needlessly degraded to an epoch-0 snapshot: %+v", resp)
	}

	s.UpsertDirect(device.Info{Name: "dual", Addr: wlanAddr("W1"), Siblings: []device.Addr{gprsAddr("G1")}}, 238)
	resp = s.SyncResponse(s.Digest().Epoch, s.Digest().Gen, false)
	if !resp.Full || resp.Epoch != 0 {
		t.Fatalf("sibling-carrying table served a syncable legacy answer: %+v", resp)
	}
	for _, en := range resp.Entries {
		if len(en.Info.Siblings) != 0 {
			t.Fatalf("legacy answer leaked siblings: %v", en.Info.Addr)
		}
	}
	count, hash := phproto.DigestOf(resp.Entries)
	if count != resp.DigestCount || hash != resp.DigestHash {
		t.Fatal("stripped snapshot's digest does not cover what was sent")
	}

	// A capable fetcher keeps the extended forms and the real epoch.
	ext := s.SyncResponse(s.Digest().Epoch, s.Digest().Gen, true)
	if ext.Epoch != s.Digest().Epoch {
		t.Fatalf("extended answer degraded: %+v", ext)
	}
}

// TestSiblingAdoptionFromBridgedReport: a bridged row carrying sibling
// info enriches a stored row that has none, and the adoption is
// wire-visible (generation advances) so it propagates onward.
func TestSiblingAdoptionFromBridgedReport(t *testing.T) {
	s := New(Config{Clock: clock.NewManual()})
	bridge := wlanAddr("B1")
	wl, gp := wlanAddr("W1"), gprsAddr("G1")

	s.UpsertDirect(device.Info{Name: "bridge", Addr: bridge}, 240)
	s.MergeNeighborhood(bridge, 240, []phproto.NeighborEntry{
		{Info: device.Info{Name: "dual", Addr: wl}, QualitySum: 238, QualityMin: 238},
	})
	genBefore := s.Digest().Gen

	s.MergeNeighborhood(bridge, 240, []phproto.NeighborEntry{
		{Info: device.Info{Name: "dual", Addr: wl, Siblings: []device.Addr{gp}}, QualitySum: 238, QualityMin: 238},
	})
	e, _ := s.Lookup(wl)
	if len(e.Info.Siblings) != 1 || e.Info.Siblings[0] != gp {
		t.Fatalf("sibling info not adopted from the bridged report: %v", e.Info.Siblings)
	}
	if s.Digest().Gen == genBefore {
		t.Fatal("sibling adoption did not advance the generation (delta sync would never carry it)")
	}

	// The candidate exclusion applies to vertical routes too: excluding
	// the bridge must drop the via-bridge route to the (future) sibling.
	s.MergeNeighborhood(bridge, 240, []phproto.NeighborEntry{
		{Info: device.Info{Name: "dual", Addr: wl, Siblings: []device.Addr{gp}}, QualitySum: 238, QualityMin: 238},
		{Info: device.Info{Name: "dual", Addr: gp, Siblings: []device.Addr{wl}}, QualitySum: 232, QualityMin: 232},
	})
	if cands := s.AlternateRoutesByIdentity(wl, bridge); len(cands) != 0 {
		t.Fatalf("excludeBridge leaked candidates: %v", cands)
	}
}
