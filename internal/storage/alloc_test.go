package storage

import (
	"fmt"
	"testing"

	"peerhood/internal/device"
	"peerhood/internal/phproto"
	"peerhood/internal/race"
)

// Allocation budgets for the merge hot paths. These are contracts, not
// observations: every discovery round funnels each neighbour's full table
// (or delta) through these functions, so per-row garbage here scales with
// neighbourhood density times round rate. The steady state — a neighbour
// re-reporting rows we already hold — must not allocate at all: the
// reported-set and coalescing scratch are reused, the route re-sort is an
// in-place insertion sort, the wire-form fingerprint hashes through a
// pooled encoder, and an unchanged descriptor skips the identity reindex.
const (
	// mergeDeltaBudget: re-merging a delta whose rows we already hold.
	mergeDeltaBudget = 0
	// mergeFullBudget: re-merging a full table we already hold (the
	// per-round AnalyzeNeighbourhoodDevices pass).
	mergeFullBudget = 0
)

func allocProbeEntries(n int) []phproto.NeighborEntry {
	out := make([]phproto.NeighborEntry, n)
	for i := range out {
		out[i] = phproto.NeighborEntry{
			Info: device.Info{
				Name:     fmt.Sprintf("dev%d", i),
				Addr:     device.Addr{Tech: device.TechBluetooth, MAC: fmt.Sprintf("m%03d", i)},
				Mobility: device.Dynamic,
			},
			Jumps:      uint8(i % 4),
			QualitySum: uint32(240 + i),
			QualityMin: uint8(231),
		}
	}
	return out
}

// TestMergeNeighborhoodDeltaAllocFree pins the satellite requirement:
// folding in a delta whose rows match the stored state performs no
// allocations.
func TestMergeNeighborhoodDeltaAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	st := New(Config{})
	bridge := device.Addr{Tech: device.TechBluetooth, MAC: "bridge"}
	st.UpsertDirect(device.Info{Name: "bridge", Addr: bridge, Mobility: device.Static}, 240)
	rows := allocProbeEntries(8)
	st.MergeNeighborhoodDelta(bridge, 240, rows, nil) // warm: rows stored
	allocs := testing.AllocsPerRun(200, func() {
		st.MergeNeighborhoodDelta(bridge, 240, rows, nil)
	})
	if allocs > mergeDeltaBudget {
		t.Fatalf("MergeNeighborhoodDelta steady state = %.1f allocs/op, budget %d", allocs, mergeDeltaBudget)
	}
}

// TestMergeNeighborhoodAllocFree pins the full-table sweep the same way:
// the reported-set scratch and the stopped-reporting sweep must not
// allocate when nothing changed.
func TestMergeNeighborhoodAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	st := New(Config{})
	st.AddSelfAddr(device.Addr{Tech: device.TechBluetooth, MAC: "self"})
	bridge := device.Addr{Tech: device.TechBluetooth, MAC: "bridge"}
	st.UpsertDirect(device.Info{Name: "bridge", Addr: bridge, Mobility: device.Static}, 240)
	rows := allocProbeEntries(64)
	st.MergeNeighborhood(bridge, 240, rows) // warm
	allocs := testing.AllocsPerRun(100, func() {
		st.MergeNeighborhood(bridge, 240, rows)
	})
	if allocs > mergeFullBudget {
		t.Fatalf("MergeNeighborhood steady state = %.1f allocs/op, budget %d", allocs, mergeFullBudget)
	}
}

// TestEntryFreeListRecycles drives churn — a device removed and re-learned
// — and checks the table stays correct (the free list must hand back fully
// zeroed entries; a leaked route or identity would surface here).
func TestEntryFreeListRecycles(t *testing.T) {
	st := New(Config{})
	bridge := device.Addr{Tech: device.TechBluetooth, MAC: "bridge"}
	st.UpsertDirect(device.Info{Name: "bridge", Addr: bridge, Mobility: device.Static}, 240)
	rows := allocProbeEntries(16)
	for round := 0; round < 50; round++ {
		st.MergeNeighborhood(bridge, 240, rows)
		if got := st.Len(); got != 17 {
			t.Fatalf("round %d: Len = %d, want 17", round, got)
		}
		for _, r := range rows {
			e, ok := st.Lookup(r.Info.Addr)
			if !ok || len(e.Routes) != 1 || e.Routes[0].Bridge != bridge {
				t.Fatalf("round %d: %v entry corrupt: %+v ok=%v", round, r.Info.Addr, e, ok)
			}
			if e.Info.Name != r.Info.Name || e.Identity() == "" {
				t.Fatalf("round %d: %v descriptor corrupt: %+v", round, r.Info.Addr, e.Info)
			}
		}
		// Empty report: the bridge lost everything; all 16 rows removed.
		st.MergeNeighborhood(bridge, 240, nil)
		if got := st.Len(); got != 1 {
			t.Fatalf("round %d: after sweep Len = %d, want 1", round, got)
		}
	}
}
