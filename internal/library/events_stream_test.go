package library_test

import (
	"testing"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/events"
	"peerhood/internal/geo"
	"peerhood/internal/phproto"
	"peerhood/internal/phtest"
	"peerhood/internal/plugin"
)

// TestEventSubscribeWirePath exercises the engine-port event stream end
// to end: dial the peer's engine port, EVENT_SUBSCRIBE with a mask, read
// the PH_OK, publish on the peer's bus, and decode the EVENT frames.
func TestEventSubscribeWirePath(t *testing.T) {
	w := phtest.InstantWorld(t, 41)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "B", geo.Pt(2, 0), device.Static)

	conn, err := a.Plugin.Dial(b.Addr(), device.PortEngine)
	if err != nil {
		t.Fatalf("dial engine: %v", err)
	}
	defer conn.Close()

	mask := events.MaskOf(events.LinkDegrading, events.DeviceLost)
	if err := phproto.Write(conn, &phproto.EventSubscribe{Mask: uint32(mask)}); err != nil {
		t.Fatal(err)
	}
	ack, err := phproto.ReadExpect[*phproto.Ack](conn)
	if err != nil || !ack.OK {
		t.Fatalf("subscribe ack = %+v, %v", ack, err)
	}

	subject := device.Addr{Tech: device.TechBluetooth, MAC: "watched"}
	b.Daemon.Bus().Publish(events.Event{Type: events.DeviceAppeared, Addr: subject, Quality: 250}) // filtered out
	b.Daemon.Bus().Publish(events.Event{
		Type:            events.LinkDegrading,
		Addr:            subject,
		Quality:         233,
		TimeToThreshold: 1500 * time.Millisecond,
		Detail:          "slope=-1.00/s",
	})

	got, err := phproto.ReadExpect[*phproto.EventNotice](conn)
	if err != nil {
		t.Fatalf("reading event: %v", err)
	}
	if events.Type(got.Type) != events.LinkDegrading || got.Addr != subject {
		t.Fatalf("event = %+v", got)
	}
	if got.Quality != 233 || got.TimeToThreshold != 1500*time.Millisecond || got.Detail != "slope=-1.00/s" {
		t.Fatalf("event payload = %+v", got)
	}
	if got.Seq == 0 || got.UnixNanos == 0 {
		t.Fatalf("missing stamp: %+v", got)
	}
}

// TestEventStreamSpanStamping pins the negotiated span field: a
// subscriber that set EventSubFlagSpans receives the originating trace
// span on each EVENT frame, while a flagless (legacy-form) subscriber
// on the same bus gets the span-free encoding.
func TestEventStreamSpanStamping(t *testing.T) {
	w := phtest.InstantWorld(t, 46)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "B", geo.Pt(2, 0), device.Static)

	subscribe := func(flags uint8) plugin.Conn {
		conn, err := a.Plugin.Dial(b.Addr(), device.PortEngine)
		if err != nil {
			t.Fatalf("dial engine: %v", err)
		}
		if err := phproto.Write(conn, &phproto.EventSubscribe{Flags: flags}); err != nil {
			t.Fatal(err)
		}
		if ack, err := phproto.ReadExpect[*phproto.Ack](conn); err != nil || !ack.OK {
			t.Fatalf("ack = %+v, %v", ack, err)
		}
		return conn
	}
	flagged := subscribe(phproto.EventSubFlagSpans)
	defer flagged.Close()
	flagless := subscribe(0)
	defer flagless.Close()

	spanID := b.Daemon.Tracer().Event("test.origin", 0, "", "")
	b.Daemon.Bus().Publish(events.Event{
		Type: events.LinkDegrading,
		Addr: device.Addr{Tech: device.TechBluetooth, MAC: "watched"},
		Span: spanID,
	})

	got, err := phproto.ReadExpect[*phproto.EventNotice](flagged)
	if err != nil {
		t.Fatalf("flagged stream: %v", err)
	}
	if got.Span != spanID {
		t.Fatalf("flagged notice span = %016x, want %016x", got.Span, spanID)
	}
	plain, err := phproto.ReadExpect[*phproto.EventNotice](flagless)
	if err != nil {
		t.Fatalf("flagless stream: %v", err)
	}
	if plain.Span != 0 {
		t.Fatalf("flagless notice carries span %016x; legacy decoders reject the extra bytes", plain.Span)
	}
}

// TestEventStreamEndsOnLibraryStop verifies a live stream does not wedge
// Stop: the library closes the subscription and the transport, and the
// subscriber sees EOF.
func TestEventStreamEndsOnLibraryStop(t *testing.T) {
	w := phtest.InstantWorld(t, 42)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "B", geo.Pt(2, 0), device.Static)

	conn, err := a.Plugin.Dial(b.Addr(), device.PortEngine)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := phproto.Write(conn, &phproto.EventSubscribe{}); err != nil {
		t.Fatal(err)
	}
	if ack, err := phproto.ReadExpect[*phproto.Ack](conn); err != nil || !ack.OK {
		t.Fatalf("ack = %+v, %v", ack, err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := phproto.Read(conn)
		done <- err
	}()
	b.Lib.Stop() // must not hang on the open stream

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stream delivered an event after Stop")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber still blocked after library Stop")
	}
}

// TestInProcessEventsAPI covers Library.Events, the in-process
// subscription applications use.
func TestInProcessEventsAPI(t *testing.T) {
	w := phtest.InstantWorld(t, 43)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "B", geo.Pt(2, 0), device.Static)

	sub := a.Lib.Events(events.MaskOf(events.DeviceAppeared))
	defer sub.Close()
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	select {
	case e := <-sub.C():
		if e.Type != events.DeviceAppeared || e.Addr != b.Addr() {
			t.Fatalf("event = %+v", e)
		}
	default:
		t.Fatal("no DeviceAppeared on the in-process feed")
	}
}
