// Package library implements the PeerHood library (§2.2.2): the
// application-facing half of a node. It offers connection establishment
// (Connect, fig 2.5), the Engine that listens for incoming connections and
// dispatches them by hello command (PH_NEW / PH_BRIDGE / PH_RECONNECT,
// §4.1), neighbourhood queries (GetDeviceList / GetServiceList), and the
// virtual connections whose transports can be swapped underneath an
// application during handover (§5.2).
package library

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/daemon"
	"peerhood/internal/device"
	"peerhood/internal/events"
	"peerhood/internal/phproto"
	"peerhood/internal/plugin"
	"peerhood/internal/rng"
	"peerhood/internal/storage"
	"peerhood/internal/telemetry"
)

// Library errors.
var (
	// ErrUnknownDevice reports a Connect to a device absent from the
	// DeviceStorage.
	ErrUnknownDevice = errors.New("library: unknown device")
	// ErrUnknownService reports a Connect to a service the target does not
	// advertise.
	ErrUnknownService = errors.New("library: unknown service")
	// ErrRejected reports a PH_FAIL acknowledgement from the peer or a
	// bridge on the chain.
	ErrRejected = errors.New("library: connection rejected")
	// ErrNoRoute reports that no stored route reaches the target.
	ErrNoRoute = errors.New("library: no route to device")
	// ErrClosed reports use of a closed library or connection.
	ErrClosed = errors.New("library: closed")
)

// Defaults.
const (
	// DefaultBridgeTTL bounds bridge chains (hop budget of PH_BRIDGE).
	DefaultBridgeTTL = 8
	// DefaultDialRetries is how many times transient connection faults are
	// retried; §4.3 concludes "the connection attempt repetition in the
	// Bridge service design would be necessary".
	DefaultDialRetries = 2
	// DefaultSwapWait is how long a virtual connection's Read/Write blocks
	// waiting for a handover to replace a failed transport before
	// propagating the error.
	DefaultSwapWait = 30 * time.Second
)

// Config parametrises a Library.
type Config struct {
	Daemon *daemon.Daemon
	// BridgeTTL, DialRetries, SwapWait default to the package constants.
	BridgeTTL   uint8
	DialRetries int
	SwapWait    time.Duration
	// Seed makes connection-ID generation deterministic; 0 derives one
	// from the daemon name.
	Seed int64
	// DisableContinuity makes the engine behave like a pre-continuity
	// peer: extended hellos are dropped without an acknowledgement (a real
	// legacy decoder rejects their trailing bytes and hangs up) and
	// PH_RESUME is an unknown command. Interop tests and staged rollouts
	// use it; callers fall back to today's lossy behaviour.
	DisableContinuity bool
}

// ConnectionMeta describes an incoming connection to a service handler.
type ConnectionMeta struct {
	// ConnID is the logical connection identifier, stable across
	// handovers.
	ConnID uint64
	// Service is the local service the peer connected to.
	Service device.ServiceInfo
	// Remote is the transport peer — the actual dialer or the last bridge
	// of a chain.
	Remote device.Addr
	// HasClient marks Client as meaningful: the dialer sent its own
	// descriptor so the service can reconnect to it later (§5.3).
	HasClient bool
	Client    device.Info
}

// Handler consumes an accepted service connection. Handlers run on their
// own goroutine; they own vc and must Close it.
type Handler func(vc *VirtualConnection, meta ConnectionMeta)

// BridgeHandler consumes a PH_BRIDGE hello. The bridge service registers
// one; it takes ownership of conn, including acknowledgement.
type BridgeHandler func(conn plugin.Conn, hello *phproto.HelloBridge, via plugin.Plugin)

// Library is one device's PeerHood library instance. The thesis keeps
// library and engine as singletons per device (§4.1); here that scope is
// one Library value per daemon.
type Library struct {
	d   *daemon.Daemon
	clk clock.Clock
	cfg Config
	src *rng.Source

	mu            sync.Mutex
	engines       []plugin.Listener
	handlers      map[uint16]handlerEntry
	bridgeHandler BridgeHandler
	vcs           map[uint64]*VirtualConnection
	eventStreams  map[plugin.Conn]*events.Subscription
	traceStreams  map[plugin.Conn]*telemetry.TraceSub
	started       bool
	stopped       bool
	wg            sync.WaitGroup

	// Continuity telemetry, resolved once (nil-safe on a daemon without a
	// registry).
	contRetransFrames *telemetry.Counter
	contRetransBytes  *telemetry.Counter
	contDupFrames     *telemetry.Counter
	contDupBytes      *telemetry.Counter
	contResumes       *telemetry.Counter
}

type handlerEntry struct {
	svc device.ServiceInfo
	h   Handler
}

// New returns a Library bound to a daemon.
func New(cfg Config) (*Library, error) {
	if cfg.Daemon == nil {
		return nil, errors.New("library: Daemon is required")
	}
	if cfg.BridgeTTL == 0 {
		cfg.BridgeTTL = DefaultBridgeTTL
	}
	switch {
	case cfg.DialRetries == 0:
		cfg.DialRetries = DefaultDialRetries
	case cfg.DialRetries < 0:
		// Negative disables retries entirely (the pre-thesis behaviour the
		// §4.3 experiment measures).
		cfg.DialRetries = 0
	}
	if cfg.SwapWait == 0 {
		cfg.SwapWait = DefaultSwapWait
	}
	seed := cfg.Seed
	if seed == 0 {
		h := fnv.New64a()
		_, _ = h.Write([]byte(cfg.Daemon.Name()))
		seed = int64(h.Sum64())
	}
	reg := cfg.Daemon.Registry()
	return &Library{
		d:            cfg.Daemon,
		clk:          cfg.Daemon.Clock(),
		cfg:          cfg,
		src:          rng.New(seed),
		handlers:     make(map[uint16]handlerEntry),
		vcs:          make(map[uint64]*VirtualConnection),
		eventStreams: make(map[plugin.Conn]*events.Subscription),
		traceStreams: make(map[plugin.Conn]*telemetry.TraceSub),

		contRetransFrames: reg.Counter("peerhood_continuity_retransmit_frames_total"),
		contRetransBytes:  reg.Counter("peerhood_continuity_retransmit_bytes_total"),
		contDupFrames:     reg.Counter("peerhood_continuity_dup_frames_total"),
		contDupBytes:      reg.Counter("peerhood_continuity_dup_bytes_total"),
		contResumes:       reg.Counter("peerhood_continuity_resumes_total"),
	}, nil
}

// Daemon returns the underlying daemon.
func (l *Library) Daemon() *daemon.Daemon { return l.d }

// Clock returns the library's clock.
func (l *Library) Clock() clock.Clock { return l.clk }

// Start binds the engine port on every plugin and begins dispatching
// incoming connections.
func (l *Library) Start() error {
	l.mu.Lock()
	if l.started {
		l.mu.Unlock()
		return errors.New("library: already started")
	}
	l.started = true
	l.mu.Unlock()

	for _, p := range l.d.Plugins() {
		ln, err := p.Listen(device.PortEngine)
		if err != nil {
			l.Stop()
			return fmt.Errorf("library: binding engine port on %v: %w", p.Tech(), err)
		}
		l.mu.Lock()
		l.engines = append(l.engines, ln)
		l.mu.Unlock()
		l.wg.Add(1)
		go l.acceptLoop(p, ln)
	}
	return nil
}

// Stop closes the engine listeners and every open virtual connection, then
// waits for library goroutines (including service handlers) to exit.
func (l *Library) Stop() {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.stopped = true
	engines := l.engines
	vcs := make([]*VirtualConnection, 0, len(l.vcs))
	for _, vc := range l.vcs {
		vcs = append(vcs, vc)
	}
	streams := make(map[plugin.Conn]*events.Subscription, len(l.eventStreams))
	for c, s := range l.eventStreams {
		streams[c] = s
	}
	traces := make(map[plugin.Conn]*telemetry.TraceSub, len(l.traceStreams))
	for c, s := range l.traceStreams {
		traces[c] = s
	}
	l.mu.Unlock()

	for _, e := range engines {
		_ = e.Close()
	}
	for _, vc := range vcs {
		_ = vc.Close()
	}
	for c, s := range streams {
		// Closing the subscription ends the streaming goroutine's range
		// loop; closing the transport unblocks any in-flight write.
		s.Close()
		_ = c.Close()
	}
	for c, s := range traces {
		l.d.Tracer().Unsubscribe(s)
		_ = c.Close()
	}
	l.wg.Wait()
}

// RegisterService registers a service with the daemon and installs its
// connection handler (the callback path of §2.2.2's Engine).
func (l *Library) RegisterService(name, attr string, h Handler) (device.ServiceInfo, error) {
	if h == nil {
		return device.ServiceInfo{}, errors.New("library: nil handler")
	}
	svc, err := l.d.RegisterService(name, attr)
	if err != nil {
		return device.ServiceInfo{}, err
	}
	l.mu.Lock()
	l.handlers[svc.Port] = handlerEntry{svc: svc, h: h}
	l.mu.Unlock()
	return svc, nil
}

// UnregisterService removes a service and its handler.
func (l *Library) UnregisterService(name string) {
	svcs := l.d.Services()
	l.d.UnregisterService(name)
	l.mu.Lock()
	for _, s := range svcs {
		if s.Name == name {
			delete(l.handlers, s.Port)
		}
	}
	l.mu.Unlock()
}

// SetBridgeHandler installs the PH_BRIDGE dispatcher (the bridge service).
func (l *Library) SetBridgeHandler(h BridgeHandler) {
	l.mu.Lock()
	l.bridgeHandler = h
	l.mu.Unlock()
}

// GetDeviceList returns the daemon's device table (the thesis' library
// call of the same name).
func (l *Library) GetDeviceList() []storage.Entry {
	return l.d.Storage().Snapshot()
}

// GetServiceList returns the known providers of a named service.
func (l *Library) GetServiceList(name string) []storage.ServiceProvider {
	return l.d.Storage().FindService(name)
}

// ConnectOption tweaks a Connect call.
type ConnectOption func(*connectOptions)

type connectOptions struct {
	sendClientInfo bool
	preferTech     device.Tech
	continuity     bool
	windowBytes    int
}

// WithClientInfo makes Connect send the local device descriptor in the
// hello, enabling the server to reconnect and deliver results after a
// disconnection (§5.3 method 2).
func WithClientInfo() ConnectOption {
	return func(o *connectOptions) { o.sendClientInfo = true }
}

// WithContinuity negotiates the session-continuity window on the
// connection: the byte stream is framed with sequence numbers, the un-acked
// tail is buffered and replayed across handovers (PH_RESUME), and the far
// end deduplicates — zero byte loss, no duplicates, bearer changes
// invisible to the application. A peer that cannot decode the extended
// hello hangs up, and Connect falls back to a flagless attempt on the same
// route: legacy peers keep today's lossy behaviour.
func WithContinuity() ConnectOption {
	return func(o *connectOptions) { o.continuity = true }
}

// WithContinuityWindow is WithContinuity with an explicit send-window bound
// in bytes (<= 0 takes record.DefaultWindowBytes). The bound is the
// connection's retransmission memory cost; a writer blocks once it is full
// of un-acked data.
func WithContinuityWindow(bytes int) ConnectOption {
	return func(o *connectOptions) {
		o.continuity = true
		o.windowBytes = bytes
	}
}

// WithTech states a technology preference for the connection: when the
// target device's identity has a stored sibling interface of technology t
// that advertises the service and is reachable, Connect dials that
// interface instead. A preference, not a requirement — without such a
// sibling the original target is used.
func WithTech(t device.Tech) ConnectOption {
	return func(o *connectOptions) { o.preferTech = t }
}

// Connect establishes a virtual connection to a named service on the
// target device, using the best stored route — directly when the target is
// in coverage, through a bridge chain otherwise (fig 4.1). Remaining
// candidate routes are tried in order if the best one fails.
func (l *Library) Connect(target device.Addr, service string, opts ...ConnectOption) (*VirtualConnection, error) {
	var o connectOptions
	for _, opt := range opts {
		opt(&o)
	}

	entry, ok := l.d.Storage().Lookup(target)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownDevice, target)
	}
	if o.preferTech != 0 && target.Tech != o.preferTech {
		// Identity-aware retarget: the same device on the preferred bearer.
		for _, sib := range l.d.Storage().Siblings(target) {
			if sib.Info.Addr.Tech != o.preferTech || len(sib.Routes) == 0 {
				continue
			}
			if _, ok := sib.Info.FindService(service); !ok {
				continue
			}
			entry, target = sib, sib.Info.Addr
			break
		}
	}
	svc, ok := entry.Info.FindService(service)
	if !ok {
		return nil, fmt.Errorf("%w: %q on %v", ErrUnknownService, service, target)
	}
	if len(entry.Routes) == 0 {
		return nil, fmt.Errorf("%w: %v", ErrNoRoute, target)
	}

	var client *device.Info
	if o.sendClientInfo {
		if info, ok := l.d.InfoFor(target.Tech); ok {
			client = &info
		}
	}

	connID := l.newConnID()
	var token uint64
	if o.continuity {
		token = l.NewContinuityToken()
	}
	var lastErr error
	for _, route := range entry.Routes {
		if o.continuity {
			raw, err := l.ConnectVia(Via{
				Route:       route,
				Target:      target,
				ServiceName: svc.Name,
				ServicePort: svc.Port,
				ConnID:      connID,
				Client:      client,
				Continuity:  true,
				Token:       token,
			})
			if err == nil {
				vc := newVirtualConnection(l, raw, connID, target, svc, route.Bridge)
				vc.enableContinuity(token, o.windowBytes)
				l.register(vc)
				return vc, nil
			}
			lastErr = err
			if errors.Is(err, ErrRejected) && route.Direct() {
				// An explicit PH_FAIL on a direct route means the peer
				// decoded the extended hello and refused the service; a
				// flagless retry cannot change that verdict. Through a
				// bridge the PH_FAIL may only mean the downstream leg choked
				// on the extension, so bridged routes still get the retry.
				continue
			}
			// Hang-up without an acknowledgement: a legacy peer (or bridge)
			// choking on the extended hello. Retry the same route flagless —
			// today's lossy behaviour.
		}
		raw, err := l.ConnectVia(Via{
			Route:       route,
			Target:      target,
			ServiceName: svc.Name,
			ServicePort: svc.Port,
			ConnID:      connID,
			Client:      client,
		})
		if err != nil {
			lastErr = err
			continue
		}
		vc := newVirtualConnection(l, raw, connID, target, svc, route.Bridge)
		l.register(vc)
		return vc, nil
	}
	return nil, lastErr
}

// NewContinuityToken draws a fresh session-continuity token from the
// library's deterministic source. The handover thread uses it when a lossy
// service reconnection needs to renegotiate a continuity session.
func (l *Library) NewContinuityToken() uint64 {
	for {
		if t := uint64(l.src.Int63()); t != 0 {
			return t
		}
	}
}

// Via describes one low-level connection attempt along a specific route.
type Via struct {
	Route       storage.Route
	Target      device.Addr
	ServiceName string
	ServicePort uint16
	ConnID      uint64
	// Reconnect makes the final hop deliver PH_RECONNECT instead of
	// PH_NEW, re-attaching to an existing logical connection (§5.2.1).
	Reconnect bool
	// Client, if non-nil, is sent in the hello so the far end can dial
	// back later (§5.3 method 2).
	Client *device.Info
	// TTL bounds the bridge chain; 0 takes the library default. Bridges
	// pass the decremented TTL of the hello they are extending.
	TTL uint8
	// Continuity asks the far end to enable the session-continuity window;
	// Token is the session secret sent with the PH_NEW (and forwarded hop
	// by hop through bridges).
	Continuity bool
	Token      uint64
	// Resume, when non-nil, makes the final hop deliver PH_RESUME instead
	// of PH_NEW/PH_RECONNECT: re-attach to connection ConnID with the
	// stated proof and receive position. On success Resume.PeerRecvSeq is
	// filled from the endpoint's PH_RESUME_ACK.
	Resume *ResumeInfo
}

// ResumeInfo carries a PH_RESUME's identity proof and receive position, and
// returns the endpoint's position.
type ResumeInfo struct {
	// Token proves the caller originated the continuity session.
	Token uint64
	// RecvSeq is the caller's cumulative receive position.
	RecvSeq uint32
	// PeerRecvSeq is an out-parameter: the endpoint's cumulative receive
	// position, from which the caller replays its un-acked tail.
	PeerRecvSeq uint32
}

// ConnectVia performs the low-level connection establishment along one
// route: dial the first hop's engine port (with fault retries), send the
// appropriate hello (PH_NEW, PH_RECONNECT, or PH_BRIDGE carrying the final
// destination, fig 4.3), and wait for the chain-propagated
// acknowledgement. It returns the raw transport on success. The handover
// thread uses it with Reconnect to build replacement transports (§5.2.1),
// and the bridge service uses it to extend chains hop by hop.
func (l *Library) ConnectVia(v Via) (plugin.Conn, error) {
	ttl := v.TTL
	if ttl == 0 {
		ttl = l.cfg.BridgeTTL
	}

	firstHop := v.Target
	var hello phproto.Message
	switch {
	case v.Route.Direct() && v.Resume != nil:
		hello = &phproto.HelloResume{ConnID: v.ConnID, Token: v.Resume.Token, RecvSeq: v.Resume.RecvSeq}
	case v.Route.Direct() && v.Reconnect:
		hello = &phproto.HelloReconnect{ConnID: v.ConnID}
	case v.Route.Direct():
		m := &phproto.HelloNew{ServicePort: v.ServicePort, ServiceName: v.ServiceName, ConnID: v.ConnID}
		if v.Client != nil {
			m.HasClient = true
			m.Client = v.Client.Clone()
		}
		if v.Continuity {
			m.Flags = phproto.HelloFlagContinuity
			m.Token = v.Token
		}
		hello = m
	default:
		firstHop = v.Route.Bridge
		m := &phproto.HelloBridge{
			Dest:        v.Target,
			ServiceName: v.ServiceName,
			ServicePort: v.ServicePort,
			ConnID:      v.ConnID,
			TTL:         ttl,
			Reconnect:   v.Reconnect,
		}
		if v.Client != nil {
			m.HasClient = true
			m.Client = v.Client.Clone()
		}
		switch {
		case v.Resume != nil:
			m.Flags = phproto.HelloFlagResume
			m.Token = v.Resume.Token
			m.RecvSeq = v.Resume.RecvSeq
		case v.Continuity:
			m.Flags = phproto.HelloFlagContinuity
			m.Token = v.Token
		}
		hello = m
	}

	// The dial goes out on the first hop's radio, which need not share the
	// target's technology: a WLAN hotspot can bridge towards a peer's GPRS
	// interface. Selecting the plugin by target tech (the pre-identity
	// behaviour) made every cross-technology route undialable.
	p, ok := l.d.PluginFor(firstHop.Tech)
	if !ok {
		return nil, fmt.Errorf("%w: no %v plugin", ErrNoRoute, firstHop.Tech)
	}
	raw, err := l.dialRetry(p, firstHop, device.PortEngine)
	if err != nil {
		return nil, err
	}
	if err := phproto.Write(raw, hello); err != nil {
		_ = raw.Close()
		return nil, fmt.Errorf("library: sending hello: %w", err)
	}
	if v.Resume != nil {
		// A resume is acknowledged end to end with PH_RESUME_ACK so the
		// endpoint's receive position propagates back through any bridges.
		rack, err := phproto.ReadExpect[*phproto.ResumeAck](raw)
		if err != nil {
			_ = raw.Close()
			return nil, fmt.Errorf("library: awaiting resume acknowledgement: %w", err)
		}
		if !rack.OK {
			_ = raw.Close()
			return nil, fmt.Errorf("%w: %s", ErrRejected, rack.Reason)
		}
		v.Resume.PeerRecvSeq = rack.RecvSeq
		return raw, nil
	}
	ack, err := phproto.ReadExpect[*phproto.Ack](raw)
	if err != nil {
		_ = raw.Close()
		return nil, fmt.Errorf("library: awaiting acknowledgement: %w", err)
	}
	if !ack.OK {
		_ = raw.Close()
		return nil, fmt.Errorf("%w: %s", ErrRejected, ack.Reason)
	}
	return raw, nil
}

// dialRetry dials, retrying transient connection faults per configuration.
func (l *Library) dialRetry(p plugin.Plugin, to device.Addr, port uint16) (plugin.Conn, error) {
	var lastErr error
	for attempt := 0; attempt <= l.cfg.DialRetries; attempt++ {
		c, err := p.Dial(to, port)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if !errors.Is(err, plugin.ErrConnectFault) {
			break
		}
	}
	return nil, lastErr
}

// acceptLoop dispatches incoming engine connections by hello command.
func (l *Library) acceptLoop(p plugin.Plugin, ln plugin.Listener) {
	defer l.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.handleIncoming(p, conn)
		}()
	}
}

func (l *Library) handleIncoming(p plugin.Plugin, conn plugin.Conn) {
	msg, err := phproto.Read(conn)
	if err != nil {
		_ = conn.Close()
		return
	}
	switch m := msg.(type) {
	case *phproto.HelloNew:
		l.handleHelloNew(conn, m)
	case *phproto.HelloBridge:
		l.mu.Lock()
		bh := l.bridgeHandler
		l.mu.Unlock()
		if bh == nil {
			_ = phproto.Write(conn, &phproto.Ack{OK: false, Reason: "no bridge service"})
			_ = conn.Close()
			return
		}
		bh(conn, m, p)
	case *phproto.HelloReconnect:
		l.handleReconnect(conn, m)
	case *phproto.HelloResume:
		if l.cfg.DisableContinuity {
			// A legacy engine does not know the command; it hangs up.
			_ = conn.Close()
			return
		}
		l.handleResume(conn, m)
	case *phproto.EventSubscribe:
		l.handleEventSubscribe(conn, m)
	case *phproto.TraceSubscribe:
		l.handleTraceSubscribe(conn, m)
	default:
		_ = conn.Close()
	}
}

// Events subscribes in-process to the daemon's neighbourhood event bus
// (the library half of the middleware's "push connectivity changes to the
// application" contract). A zero mask selects every event type.
func (l *Library) Events(mask events.Mask) *events.Subscription {
	return l.d.Bus().Subscribe(mask)
}

// handleEventSubscribe serves one EVENT_SUBSCRIBE stream: acknowledge,
// then forward matching bus events as EVENT frames until the subscriber
// hangs up or the library stops. It runs on the engine's per-connection
// goroutine.
//
// The stream consumes the bus in batch mode: a publish burst accumulates
// in the subscription's ring, and each NextBatch encodes the whole burst —
// through one reused Encoder into one reused wire buffer — and ships it
// with a single conn.Write. Per steady-state event that is zero
// allocations and a fraction of a syscall, where the channel-mode loop
// paid a channel handoff, a fresh frame buffer, and a write each.
func (l *Library) handleEventSubscribe(conn plugin.Conn, m *phproto.EventSubscribe) {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		_ = phproto.Write(conn, &phproto.Ack{OK: false, Reason: "library stopped"})
		_ = conn.Close()
		return
	}
	sub := l.d.Bus().SubscribeBatch(events.Mask(m.Mask))
	l.eventStreams[conn] = sub
	l.mu.Unlock()

	defer func() {
		sub.Close()
		_ = conn.Close()
		l.mu.Lock()
		delete(l.eventStreams, conn)
		l.mu.Unlock()
	}()

	if err := phproto.Write(conn, &phproto.Ack{OK: true}); err != nil {
		return
	}
	var (
		enc    phproto.Encoder
		batch  []events.Event
		wire   []byte
		notice phproto.EventNotice
	)
	for {
		var ok bool
		batch, ok = sub.NextBatch(batch[:0])
		if !ok {
			return
		}
		wire = wire[:0]
		for _, e := range batch {
			notice = phproto.EventNotice{
				Seq:             e.Seq,
				UnixNanos:       e.Time.UnixNano(),
				Type:            uint8(e.Type),
				Addr:            e.Addr,
				Quality:         int32(e.Quality),
				TimeToThreshold: e.TimeToThreshold,
				Detail:          e.Detail,
			}
			if m.Flags&phproto.EventSubFlagSpans != 0 {
				// Only negotiated subscribers get the trailing span field;
				// a legacy decoder would reject the extra bytes.
				notice.Span = e.Span
			}
			frame, err := enc.Encode(&notice)
			if err != nil {
				return
			}
			wire = append(wire, frame...)
		}
		if _, err := conn.Write(wire); err != nil {
			return
		}
	}
}

// handleTraceSubscribe serves one TRACE_SUBSCRIBE stream: acknowledge,
// replay up to m.Tail already-finished spans from the tracer's ring, then
// forward live spans as TRACE_SPAN frames until the subscriber hangs up or
// the library stops. Like the event stream, delivery is lossy: a slow
// subscriber drops spans rather than stalling the daemon's hot paths.
func (l *Library) handleTraceSubscribe(conn plugin.Conn, m *phproto.TraceSubscribe) {
	tracer := l.d.Tracer()
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		_ = phproto.Write(conn, &phproto.Ack{OK: false, Reason: "library stopped"})
		_ = conn.Close()
		return
	}
	sub := tracer.Subscribe(0)
	l.traceStreams[conn] = sub
	l.mu.Unlock()

	defer func() {
		tracer.Unsubscribe(sub)
		_ = conn.Close()
		l.mu.Lock()
		delete(l.traceStreams, conn)
		l.mu.Unlock()
	}()

	if err := phproto.Write(conn, &phproto.Ack{OK: true}); err != nil {
		return
	}
	if m.Tail > 0 {
		tail := tracer.Spans()
		if len(tail) > int(m.Tail) {
			tail = tail[len(tail)-int(m.Tail):]
		}
		for _, sp := range tail {
			if err := phproto.Write(conn, traceSpanFrame(sp)); err != nil {
				return
			}
		}
	}
	for sp := range sub.C() {
		if err := phproto.Write(conn, traceSpanFrame(sp)); err != nil {
			return
		}
	}
}

func traceSpanFrame(sp telemetry.Span) *phproto.TraceSpan {
	return &phproto.TraceSpan{
		ID:             sp.ID,
		Parent:         sp.Parent,
		Name:           sp.Name,
		Addr:           sp.Addr,
		StartUnixNanos: sp.Start.UnixNano(),
		EndUnixNanos:   sp.End.UnixNano(),
		Detail:         sp.Detail,
	}
}

func (l *Library) handleHelloNew(conn plugin.Conn, m *phproto.HelloNew) {
	wantContinuity := m.Flags&phproto.HelloFlagContinuity != 0
	if wantContinuity && l.cfg.DisableContinuity {
		// Mimic a legacy engine faithfully: its decoder rejects the
		// extended hello's trailing bytes and hangs up without an ack,
		// which is the caller's signal to fall back flagless.
		_ = conn.Close()
		return
	}
	l.mu.Lock()
	entry, ok := l.handlers[m.ServicePort]
	if !ok && m.ServiceName != "" {
		for _, he := range l.handlers {
			if he.svc.Name == m.ServiceName {
				entry, ok = he, true
				break
			}
		}
	}
	stopped := l.stopped
	l.mu.Unlock()
	if !ok || stopped {
		_ = phproto.Write(conn, &phproto.Ack{OK: false, Reason: "no such service"})
		_ = conn.Close()
		return
	}
	if err := phproto.Write(conn, &phproto.Ack{OK: true}); err != nil {
		_ = conn.Close()
		return
	}
	vc := newVirtualConnection(l, conn, m.ConnID, conn.RemoteAddr(), entry.svc, device.Addr{})
	if wantContinuity {
		// Enabled before the handler goroutine starts and before the
		// client (who is waiting on our ack) can send a first frame.
		vc.enableContinuity(m.Token, 0)
	}
	l.register(vc)
	meta := ConnectionMeta{
		ConnID:    m.ConnID,
		Service:   entry.svc,
		Remote:    conn.RemoteAddr(),
		HasClient: m.HasClient,
		Client:    m.Client,
	}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		entry.h(vc, meta)
	}()
}

// handleReconnect re-attaches an incoming transport to the logical
// connection it names, substituting it under the application (§5.2.1's
// ChangeConnection step, server side).
func (l *Library) handleReconnect(conn plugin.Conn, m *phproto.HelloReconnect) {
	l.mu.Lock()
	vc, ok := l.vcs[m.ConnID]
	l.mu.Unlock()
	if !ok || vc.Closed() {
		_ = phproto.Write(conn, &phproto.Ack{OK: false, Reason: "unknown connection"})
		_ = conn.Close()
		return
	}
	if vc.ContinuityEnabled() {
		// A plain reconnect would silently restart the windowed stream
		// mid-sequence; a continuity session must be re-attached with
		// PH_RESUME so both sides retransmit from known positions.
		_ = phproto.Write(conn, &phproto.Ack{OK: false, Reason: "resume required"})
		_ = conn.Close()
		return
	}
	if err := phproto.Write(conn, &phproto.Ack{OK: true}); err != nil {
		_ = conn.Close()
		return
	}
	vc.Swap(conn)
}

// handleResume re-attaches an incoming transport to a continuity session:
// validate the identity proof, answer with our receive position, then
// substitute the transport — the resume sweep retransmits our own un-acked
// tail on it, and the caller replays its side from the position we sent.
func (l *Library) handleResume(conn plugin.Conn, m *phproto.HelloResume) {
	l.mu.Lock()
	vc, ok := l.vcs[m.ConnID]
	l.mu.Unlock()
	reject := func(reason string) {
		_ = phproto.Write(conn, &phproto.ResumeAck{OK: false, Reason: reason})
		_ = conn.Close()
	}
	if !ok || vc.Closed() {
		reject("unknown connection")
		return
	}
	if !vc.ContinuityEnabled() {
		reject("continuity not negotiated")
		return
	}
	if vc.ContinuityToken() != m.Token {
		reject("bad session token")
		return
	}
	tracer := l.d.Tracer()
	sp := tracer.Begin("conn.resume", 0, conn.RemoteAddr().String())
	if err := phproto.Write(conn, &phproto.ResumeAck{OK: true, RecvSeq: vc.contRecvSeq()}); err != nil {
		_ = conn.Close()
		tracer.End(sp, "resume-ack write failed")
		return
	}
	// The ack precedes the swap, so our retransmitted tail always follows
	// it on the new transport — the caller reads the ack frame-aligned.
	vc.ResumeSwap(conn, device.Addr{}, m.RecvSeq)
	tracer.End(sp, fmt.Sprintf("peer-recv=%d", m.RecvSeq))
}

func (l *Library) register(vc *VirtualConnection) {
	l.mu.Lock()
	old := l.vcs[vc.ID()]
	l.vcs[vc.ID()] = vc
	l.mu.Unlock()
	if old != nil && old != vc {
		// A fresh connection claimed a logical ID already in use: the
		// displaced connection can never be reconnected to again, and
		// leaving it open would leak its handler (blocked forever waiting
		// for a swap that cannot come).
		_ = old.Close()
	}
}

// unregister removes vc from the reconnect table — only if it still owns
// its ID, so closing a connection that was displaced by a newer one does
// not tear the newer one's registration down.
func (l *Library) unregister(vc *VirtualConnection) {
	l.mu.Lock()
	if l.vcs[vc.id] == vc {
		delete(l.vcs, vc.id)
	}
	l.mu.Unlock()
}

// newConnID generates a locally unique logical connection ID.
func (l *Library) newConnID() uint64 {
	for {
		id := uint64(l.src.Int63())
		if id == 0 {
			continue
		}
		l.mu.Lock()
		_, dup := l.vcs[id]
		l.mu.Unlock()
		if !dup {
			return id
		}
	}
}

// SwapWait returns the configured handover wait used by virtual
// connections.
func (l *Library) SwapWait() time.Duration { return l.cfg.SwapWait }
