package library_test

import (
	"testing"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/phproto"
	"peerhood/internal/phtest"
)

// TestTraceSubscribeWirePath exercises the engine-port trace stream the
// way phctl trace consumes it: dial, TRACE_SUBSCRIBE with a tail, read
// the PH_OK, then decode replayed and live TRACE_SPAN frames and check
// they carry the tracer's deterministic IDs and causal parents.
func TestTraceSubscribeWirePath(t *testing.T) {
	w := phtest.InstantWorld(t, 44)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "B", geo.Pt(2, 0), device.Static)

	// Finish two spans before subscribing, so the tail replay has history.
	tr := b.Daemon.Tracer()
	root := tr.Begin("test.root", 0, "bt:watched")
	tr.End(root, "seeded")
	tr.Event("test.event", root.ID, "", "seeded too")

	conn, err := a.Plugin.Dial(b.Addr(), device.PortEngine)
	if err != nil {
		t.Fatalf("dial engine: %v", err)
	}
	defer conn.Close()
	if err := phproto.Write(conn, &phproto.TraceSubscribe{Tail: 8}); err != nil {
		t.Fatal(err)
	}
	ack, err := phproto.ReadExpect[*phproto.Ack](conn)
	if err != nil || !ack.OK {
		t.Fatalf("subscribe ack = %+v, %v", ack, err)
	}

	first, err := phproto.ReadExpect[*phproto.TraceSpan](conn)
	if err != nil {
		t.Fatalf("reading replayed span: %v", err)
	}
	if first.ID != root.ID || first.Name != "test.root" || first.Addr != "bt:watched" || first.Detail != "seeded" {
		t.Fatalf("replayed span = %+v, want the seeded root %016x", first, root.ID)
	}
	second, err := phproto.ReadExpect[*phproto.TraceSpan](conn)
	if err != nil {
		t.Fatalf("reading second replayed span: %v", err)
	}
	if second.Name != "test.event" || second.Parent != root.ID {
		t.Fatalf("replayed event span = %+v, want parent %016x", second, root.ID)
	}

	// A span finished after subscribing streams live.
	liveID := tr.Event("test.live", 0, "", "after subscribe")
	live, err := phproto.ReadExpect[*phproto.TraceSpan](conn)
	if err != nil {
		t.Fatalf("reading live span: %v", err)
	}
	if live.ID != liveID || live.Name != "test.live" || live.Parent != 0 {
		t.Fatalf("live span = %+v, want id %016x", live, liveID)
	}
}

// TestTraceStreamEndsOnLibraryStop mirrors the event-stream guarantee:
// Stop closes open trace subscriptions instead of wedging on them.
func TestTraceStreamEndsOnLibraryStop(t *testing.T) {
	w := phtest.InstantWorld(t, 45)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "B", geo.Pt(2, 0), device.Static)

	conn, err := a.Plugin.Dial(b.Addr(), device.PortEngine)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := phproto.Write(conn, &phproto.TraceSubscribe{}); err != nil {
		t.Fatal(err)
	}
	if ack, err := phproto.ReadExpect[*phproto.Ack](conn); err != nil || !ack.OK {
		t.Fatalf("ack = %+v, %v", ack, err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := phproto.Read(conn)
		done <- err
	}()
	b.Lib.Stop() // must not hang on the open stream

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stream delivered a span after Stop")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber still blocked after library Stop")
	}
}
