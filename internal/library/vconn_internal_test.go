package library

import (
	"errors"
	"testing"

	"peerhood/internal/device"
	"peerhood/internal/plugin"
)

// shortWriteConn accepts a fixed number of bytes and then fails — the shape
// of a transport dying mid-frame under a handover.
type shortWriteConn struct {
	accept int
	wrote  int
	writes int
}

var errTorn = errors.New("transport torn")

func (c *shortWriteConn) Read(p []byte) (int, error) { return 0, errTorn }
func (c *shortWriteConn) Write(p []byte) (int, error) {
	c.writes++
	if c.accept <= 0 {
		return 0, errTorn
	}
	n := len(p)
	if n > c.accept {
		n = c.accept
	}
	c.accept -= n
	c.wrote += n
	return n, errTorn
}
func (c *shortWriteConn) Close() error            { return nil }
func (c *shortWriteConn) LocalAddr() device.Addr  { return device.Addr{} }
func (c *shortWriteConn) RemoteAddr() device.Addr { return device.Addr{} }
func (c *shortWriteConn) Quality() int            { return 255 }

var _ plugin.Conn = (*shortWriteConn)(nil)

// TestWritePartialAccountingReturnsImmediately pins the partial-write fix:
// a legacy (non-continuity) write that dies mid-frame must report exactly
// the bytes the transport accepted and return, NOT retry the whole buffer
// on a later transport. The old behaviour re-sent a prefix the peer may
// already have read, so experiment accounting (sent - received) counted the
// tear as both loss and duplication.
func TestWritePartialAccountingReturnsImmediately(t *testing.T) {
	fake := &shortWriteConn{accept: 3}
	vc := newVirtualConnection(nil, fake, 1, device.Addr{}, device.ServiceInfo{}, device.Addr{})

	n, err := vc.Write([]byte("abcdefgh"))
	if n != 3 {
		t.Fatalf("partial write reported %d bytes, want 3 (what the wire took)", n)
	}
	if !errors.Is(err, errTorn) {
		t.Fatalf("partial write err = %v, want the transport error", err)
	}
	if fake.writes != 1 {
		t.Fatalf("transport saw %d writes, want 1 (no blind whole-buffer retry)", fake.writes)
	}
	if fake.wrote != 3 {
		t.Fatalf("transport absorbed %d bytes, want 3", fake.wrote)
	}
}
