package library

import (
	"io"
	"sync"

	"peerhood/internal/device"
	"peerhood/internal/plugin"
)

// VirtualConnection is the connection object applications hold (the
// thesis' VirtualConnection, fig 2.5). The transport underneath it can be
// replaced atomically by a handover (ChangeConnection, §5.2.1): reads and
// writes that fail on a dying transport wait up to the library's SwapWait
// for a replacement and then resume on it. The application keeps a single
// object for the logical connection's whole life.
type VirtualConnection struct {
	lib    *Library
	id     uint64
	target device.Addr
	svc    device.ServiceInfo

	mu       sync.Mutex
	cur      plugin.Conn
	bridge   device.Addr // first hop if bridged; zero if direct
	gen      int
	genCh    chan struct{} // closed when gen increments
	closed   bool
	closeCh  chan struct{}
	sending  bool // result-routing flag (§5.3): false suppresses handover
	onSwap   func(oldRemote, newRemote device.Addr)
	swapped  int // total successful swaps, for experiments
	restarts int // service reconnections (§5.2.2)

	// cont, when non-nil, is the session-continuity window layer
	// (continuity.go): Read/Write go through sequence-numbered records and
	// handovers resume instead of tearing the stream. Set once before any
	// data flows, never mutated after, so the nil check is lock-free.
	cont *continuityState
}

func newVirtualConnection(l *Library, raw plugin.Conn, id uint64, target device.Addr, svc device.ServiceInfo, bridge device.Addr) *VirtualConnection {
	return &VirtualConnection{
		lib:     l,
		id:      id,
		target:  target,
		svc:     svc,
		cur:     raw,
		bridge:  bridge,
		genCh:   make(chan struct{}),
		closeCh: make(chan struct{}),
		sending: true,
	}
}

// ID returns the logical connection ID (stable across handovers).
func (vc *VirtualConnection) ID() uint64 { return vc.id }

// Target returns the logical peer device — the service owner, regardless
// of any bridges in between.
func (vc *VirtualConnection) Target() device.Addr { return vc.target }

// Service returns the connected service descriptor.
func (vc *VirtualConnection) Service() device.ServiceInfo { return vc.svc }

// Bridge returns the current route's first hop, or the zero address when
// connected directly.
func (vc *VirtualConnection) Bridge() device.Addr {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.bridge
}

// RemoteAddr returns the current transport peer (dialed device or last
// bridge hop).
func (vc *VirtualConnection) RemoteAddr() device.Addr {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.cur.RemoteAddr()
}

// Quality samples the current transport's link quality — what the
// monitoring/handover thread listens to (§2.2.2, fig 5.5 state 1).
func (vc *VirtualConnection) Quality() int {
	vc.mu.Lock()
	c := vc.cur
	vc.mu.Unlock()
	return c.Quality()
}

// Transport returns the current underlying transport. Diagnostics and the
// experiment harness use it (e.g. to inject the thesis' artificial
// quality degradation); applications should not.
func (vc *VirtualConnection) Transport() plugin.Conn {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.cur
}

// Generation returns how many transports this connection has had (1 + the
// number of swaps); experiments use it to count handovers.
func (vc *VirtualConnection) Generation() int {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.gen + 1
}

// Swaps returns the number of successful transport substitutions.
func (vc *VirtualConnection) Swaps() int {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.swapped
}

// Restarts returns how many service reconnections (full application-level
// restarts, §5.2.2) this logical connection went through.
func (vc *VirtualConnection) Restarts() int {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.restarts
}

// SetSending flags whether the application still depends on the link. The
// thesis adds this "sending" boolean so the handover thread knows a broken
// connection need not be repaired while a server is crunching (§5.3,
// result routing). Handover threads skip low-quality reactions while it is
// false.
func (vc *VirtualConnection) SetSending(s bool) {
	vc.mu.Lock()
	vc.sending = s
	vc.mu.Unlock()
}

// Sending reports the result-routing flag.
func (vc *VirtualConnection) Sending() bool {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.sending
}

// OnSwap installs the application callback invoked after every transport
// substitution (the ChangeConnection notification of fig 5.5).
func (vc *VirtualConnection) OnSwap(f func(oldRemote, newRemote device.Addr)) {
	vc.mu.Lock()
	vc.onSwap = f
	vc.mu.Unlock()
}

// Closed reports whether the connection is closed.
func (vc *VirtualConnection) Closed() bool {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.closed
}

// Swap substitutes the transport, closing the old one. It is called by the
// engine when a PH_RECONNECT arrives (server side) and by the handover
// thread after building a replacement route (client side).
func (vc *VirtualConnection) Swap(newConn plugin.Conn) {
	vc.SwapRoute(newConn, device.Addr{})
}

// SwapRoute is Swap with the new route's first hop recorded.
func (vc *VirtualConnection) SwapRoute(newConn plugin.Conn, bridge device.Addr) {
	vc.mu.Lock()
	if vc.closed {
		vc.mu.Unlock()
		_ = newConn.Close()
		return
	}
	old := vc.cur
	oldRemote := old.RemoteAddr()
	vc.cur = newConn
	vc.bridge = bridge
	vc.gen++
	vc.swapped++
	close(vc.genCh)
	vc.genCh = make(chan struct{})
	cb := vc.onSwap
	vc.mu.Unlock()

	_ = old.Close()
	if cb != nil {
		cb(oldRemote, newConn.RemoteAddr())
	}
}

// SwapRouteTo is SwapRoute with the logical target switched to another
// interface of the same device: a vertical handover re-attaches the
// connection through a sibling radio, so subsequent route lookups (and the
// handover thread's candidate queries) must key on the interface actually
// in use. The connection ID and swap accounting are unchanged — it is the
// same logical connection on a different bearer.
func (vc *VirtualConnection) SwapRouteTo(newConn plugin.Conn, target device.Addr, bridge device.Addr) {
	vc.mu.Lock()
	vc.target = target
	vc.mu.Unlock()
	vc.SwapRoute(newConn, bridge)
}

// MarkRestart records a service reconnection and swaps in the transport to
// the new provider. target is the new service owner.
func (vc *VirtualConnection) MarkRestart(newConn plugin.Conn, target device.Addr, bridge device.Addr) {
	vc.mu.Lock()
	vc.target = target
	vc.restarts++
	vc.mu.Unlock()
	vc.SwapRoute(newConn, bridge)
}

// Read reads from the current transport. On transport failure it waits up
// to the library's SwapWait for a handover to substitute a new transport,
// then retries; if none arrives the error is returned. io.EOF is returned
// as-is only when the connection is no longer expected to be repaired
// (closed, or the sending flag is off).
func (vc *VirtualConnection) Read(p []byte) (int, error) {
	if vc.cont != nil {
		return vc.contRead(p)
	}
	for {
		c, gen, genCh, err := vc.current()
		if err != nil {
			return 0, err
		}
		n, rerr := c.Read(p)
		if rerr == nil || n > 0 {
			return n, rerr
		}
		if !vc.shouldAwaitSwap() {
			return n, rerr
		}
		if !vc.awaitSwap(gen, genCh) {
			return n, rerr
		}
	}
}

// Write writes to the current transport, waiting for a handover swap on
// failure like Read. On a continuity connection (WithContinuity) a chunk
// counts as written once it is buffered in the send window — the window
// replays it across handovers, so the count is exactly what the peer will
// eventually receive. On a legacy connection a write that dies mid-frame
// reports the partial count with the error: retrying the whole buffer on
// the new transport (the old behaviour) re-sent a prefix the peer may
// already have read, so `sent - received` double-counted the tear as both
// loss and duplication. Only writes the dying transport accepted nothing
// of are retried after a swap.
func (vc *VirtualConnection) Write(p []byte) (int, error) {
	if vc.cont != nil {
		return vc.contWrite(p)
	}
	for {
		c, gen, genCh, err := vc.current()
		if err != nil {
			return 0, err
		}
		n, werr := c.Write(p)
		if werr == nil {
			return n, nil
		}
		if n > 0 {
			return n, werr
		}
		if !vc.shouldAwaitSwap() {
			return n, werr
		}
		if !vc.awaitSwap(gen, genCh) {
			return n, werr
		}
	}
}

// Close closes the connection and unregisters it from the engine's
// reconnect table.
func (vc *VirtualConnection) Close() error {
	vc.mu.Lock()
	if vc.closed {
		vc.mu.Unlock()
		return nil
	}
	vc.closed = true
	close(vc.closeCh)
	c := vc.cur
	vc.mu.Unlock()

	if ct := vc.cont; ct != nil {
		// Wake continuity waiters blocked on the pull condition so they
		// observe the close.
		ct.mu.Lock()
		ct.cond.Broadcast()
		ct.mu.Unlock()
	}
	vc.lib.unregister(vc)
	return c.Close()
}

func (vc *VirtualConnection) current() (plugin.Conn, int, chan struct{}, error) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.closed {
		return nil, 0, nil, ErrClosed
	}
	return vc.cur, vc.gen, vc.genCh, nil
}

func (vc *VirtualConnection) shouldAwaitSwap() bool {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.sending && !vc.closed
}

// awaitSwap blocks until the generation advances past gen, the connection
// closes, or SwapWait elapses. It reports whether a retry is warranted.
func (vc *VirtualConnection) awaitSwap(gen int, genCh chan struct{}) bool {
	select {
	case <-genCh:
		return true
	case <-vc.closeCh:
		return false
	case <-vc.lib.Clock().After(vc.lib.SwapWait()):
		return false
	}
}

var _ io.ReadWriteCloser = (*VirtualConnection)(nil)
