package library_test

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/library"
	"peerhood/internal/phtest"
	"peerhood/internal/simnet"
)

// echoService registers an echo service on n: every received chunk is
// written back.
func echoService(t *testing.T, n *phtest.Node) {
	t.Helper()
	_, err := n.Lib.RegisterService("echo", "test", func(vc *library.VirtualConnection, meta library.ConnectionMeta) {
		defer vc.Close()
		buf := make([]byte, 256)
		for {
			nr, err := vc.Read(buf)
			if err != nil {
				return
			}
			if _, err := vc.Write(buf[:nr]); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatalf("RegisterService(echo): %v", err)
	}
}

func TestConnectDirectAndEcho(t *testing.T) {
	w := phtest.InstantWorld(t, 1)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)
	echoService(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	defer vc.Close()

	if _, err := vc.Write([]byte("ping")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 16)
	n, err := vc.Read(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
	if vc.Target() != b.Addr() {
		t.Fatalf("Target = %v", vc.Target())
	}
	if !vc.Bridge().IsZero() {
		t.Fatalf("direct connection has bridge %v", vc.Bridge())
	}
	if vc.Generation() != 1 || vc.Swaps() != 0 {
		t.Fatalf("gen=%d swaps=%d on fresh connection", vc.Generation(), vc.Swaps())
	}
}

func TestConnectErrors(t *testing.T) {
	w := phtest.InstantWorld(t, 2)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)
	echoService(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	if _, err := a.Lib.Connect(device.Addr{Tech: device.TechBluetooth, MAC: "zz"}, "echo"); !errors.Is(err, library.ErrUnknownDevice) {
		t.Fatalf("unknown device: %v", err)
	}
	if _, err := a.Lib.Connect(b.Addr(), "missing"); !errors.Is(err, library.ErrUnknownService) {
		t.Fatalf("unknown service: %v", err)
	}
}

func TestConnectRejectedWhenHandlerMissing(t *testing.T) {
	// The service is advertised in the storage (stale) but the far end no
	// longer has a handler: the engine must PH_FAIL and Connect must
	// surface ErrRejected.
	w := phtest.InstantWorld(t, 3)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)
	echoService(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)
	b.Lib.UnregisterService("echo")

	_, err := a.Lib.Connect(b.Addr(), "echo")
	if !errors.Is(err, library.ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestIncomingMetaCarriesClientInfo(t *testing.T) {
	w := phtest.InstantWorld(t, 4)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)

	metaCh := make(chan library.ConnectionMeta, 1)
	if _, err := b.Lib.RegisterService("sink", "", func(vc *library.VirtualConnection, meta library.ConnectionMeta) {
		metaCh <- meta
		_ = vc.Close()
	}); err != nil {
		t.Fatal(err)
	}
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	vc, err := a.Lib.Connect(b.Addr(), "sink", library.WithClientInfo())
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	select {
	case meta := <-metaCh:
		if !meta.HasClient {
			t.Fatal("client info missing")
		}
		if meta.Client.Name != "a" || meta.Client.Addr != a.Addr() {
			t.Fatalf("client = %+v", meta.Client)
		}
		if meta.Service.Name != "sink" {
			t.Fatalf("service = %+v", meta.Service)
		}
		if meta.ConnID != vc.ID() {
			t.Fatal("conn IDs differ across the wire")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handler never invoked")
	}
}

func TestGetDeviceListAndServiceList(t *testing.T) {
	w := phtest.InstantWorld(t, 5)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)
	echoService(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	devs := a.Lib.GetDeviceList()
	if len(devs) != 1 || devs[0].Info.Name != "b" {
		t.Fatalf("GetDeviceList = %+v", devs)
	}
	provs := a.Lib.GetServiceList("echo")
	if len(provs) != 1 || provs[0].Entry.Info.Name != "b" {
		t.Fatalf("GetServiceList = %+v", provs)
	}
}

func TestCloseUnregistersReconnect(t *testing.T) {
	w := phtest.InstantWorld(t, 6)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)
	echoService(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	if err := vc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := vc.Close(); err != nil {
		t.Fatal("double close errored")
	}
	if _, err := vc.Read(make([]byte, 1)); !errors.Is(err, library.ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := vc.Write([]byte("x")); !errors.Is(err, library.ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
}

func TestServerSeesEOFOnClientClose(t *testing.T) {
	w := phtest.InstantWorld(t, 7)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)

	errCh := make(chan error, 1)
	if _, err := b.Lib.RegisterService("drain", "", func(vc *library.VirtualConnection, meta library.ConnectionMeta) {
		defer vc.Close()
		vc.SetSending(false) // server does not expect handover repairs
		buf := make([]byte, 64)
		for {
			if _, err := vc.Read(buf); err != nil {
				errCh <- err
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	vc, err := a.Lib.Connect(b.Addr(), "drain")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vc.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	_ = vc.Close()

	select {
	case err := <-errCh:
		if err != io.EOF {
			t.Fatalf("server read error = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server never saw EOF")
	}
}

func TestManualSwapResumesTraffic(t *testing.T) {
	// Simulates the handover mechanics without the handover package: the
	// client builds a second transport with ConnectVia(reconnect) and
	// swaps it in; both sides must resume on the new transport.
	w := phtest.InstantWorld(t, 8)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)
	echoService(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	if _, err := vc.Write([]byte("one")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if n, err := vc.Read(buf); err != nil || string(buf[:n]) != "one" {
		t.Fatalf("first read = %q, %v", buf[:n], err)
	}

	var swapMu sync.Mutex
	swapCalls := 0
	vc.OnSwap(func(oldR, newR device.Addr) {
		swapMu.Lock()
		swapCalls++
		swapMu.Unlock()
	})

	// Build the replacement transport over the same direct route.
	entry, _ := a.Daemon.Storage().Lookup(b.Addr())
	route, _ := entry.Best()
	raw, err := a.Lib.ConnectVia(library.Via{Route: route, Target: b.Addr(), ServiceName: "echo", ServicePort: vc.Service().Port, ConnID: vc.ID(), Reconnect: true})
	if err != nil {
		t.Fatalf("ConnectVia(reconnect): %v", err)
	}
	vc.SwapRoute(raw, device.Addr{})

	if _, err := vc.Write([]byte("two")); err != nil {
		t.Fatalf("post-swap write: %v", err)
	}
	if n, err := vc.Read(buf); err != nil || string(buf[:n]) != "two" {
		t.Fatalf("post-swap read = %q, %v", buf[:n], err)
	}
	if vc.Swaps() != 1 || vc.Generation() != 2 {
		t.Fatalf("swaps=%d gen=%d, want 1/2", vc.Swaps(), vc.Generation())
	}
	swapMu.Lock()
	defer swapMu.Unlock()
	if swapCalls != 1 {
		t.Fatalf("OnSwap calls = %d, want 1", swapCalls)
	}
}

func TestReconnectUnknownConnIDRejected(t *testing.T) {
	w := phtest.InstantWorld(t, 9)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)
	echoService(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	entry, _ := a.Daemon.Storage().Lookup(b.Addr())
	route, _ := entry.Best()
	_, err := a.Lib.ConnectVia(library.Via{Route: route, Target: b.Addr(), ServiceName: "echo", ServicePort: 10, ConnID: 0xDEAD, Reconnect: true})
	if !errors.Is(err, library.ErrRejected) {
		t.Fatalf("reconnect to unknown connID: %v, want ErrRejected", err)
	}
}

func TestReadBlocksAcrossSwapWindow(t *testing.T) {
	// A reader blocked on a transport that dies must survive into the new
	// transport when a swap happens within SwapWait.
	w := phtest.InstantWorld(t, 10)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)

	srvCh := make(chan *library.VirtualConnection, 1)
	if _, err := b.Lib.RegisterService("push", "", func(vc *library.VirtualConnection, meta library.ConnectionMeta) {
		srvCh <- vc // test drives the server side
	}); err != nil {
		t.Fatal(err)
	}
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	vc, err := a.Lib.Connect(b.Addr(), "push")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	srv := <-srvCh
	defer srv.Close()

	readRes := make(chan string, 1)
	go func() {
		buf := make([]byte, 16)
		n, err := vc.Read(buf)
		if err != nil {
			readRes <- "err:" + err.Error()
			return
		}
		readRes <- string(buf[:n])
	}()

	// Kill the transport under the reader, then reconnect and send.
	time.Sleep(5 * time.Millisecond)
	entry, _ := a.Daemon.Storage().Lookup(b.Addr())
	route, _ := entry.Best()
	raw, err := a.Lib.ConnectVia(library.Via{Route: route, Target: b.Addr(), ServiceName: "push", ServicePort: vc.Service().Port, ConnID: vc.ID(), Reconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	vc.SwapRoute(raw, device.Addr{}) // old transport closed; reader must survive

	if _, err := srv.Write([]byte("after")); err != nil {
		t.Fatalf("server write after reconnect: %v", err)
	}
	select {
	case got := <-readRes:
		if got != "after" {
			t.Fatalf("read across swap = %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader stuck across swap")
	}
}

func TestConnectRetriesFaults(t *testing.T) {
	// With Bluetooth fault probability 0.4 a single dial fails 40% of the
	// time; with the default 2 retries (§4.3's "connection attempt
	// repetition") the failure rate drops to 0.4^3 = 6.4%. Check that
	// Connect succeeds far more often than single dials would.
	p := simnet.DefaultParams(device.TechBluetooth).Instant()
	p.FaultProb = 0.4
	w := phtest.ScaledWorld(t, 11, 1, simnet.WithParams(device.TechBluetooth, p))
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)
	echoService(t, b)
	// Discovery fetches also dial; run rounds until b is known.
	for i := 0; i < 20; i++ {
		phtest.RunRounds([]*phtest.Node{a}, 1)
		if _, ok := a.Daemon.Storage().Lookup(b.Addr()); ok {
			break
		}
	}
	if _, ok := a.Daemon.Storage().Lookup(b.Addr()); !ok {
		t.Fatal("discovery never succeeded")
	}

	const trials = 60
	ok := 0
	for i := 0; i < trials; i++ {
		vc, err := a.Lib.Connect(b.Addr(), "echo")
		if err != nil {
			continue
		}
		ok++
		_ = vc.Close()
	}
	rate := float64(ok) / trials
	if rate < 0.80 {
		t.Fatalf("connect success rate with retries = %v, want > 0.80", rate)
	}
}

func TestStopClosesOpenConnections(t *testing.T) {
	w := phtest.InstantWorld(t, 12)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)
	echoService(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	a.Lib.Stop()
	if !vc.Closed() {
		t.Fatal("connection survived library stop")
	}
}

func TestSendingFlagDefaultsTrue(t *testing.T) {
	w := phtest.InstantWorld(t, 13)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)
	echoService(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)
	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	if !vc.Sending() {
		t.Fatal("sending flag not default-true")
	}
	vc.SetSending(false)
	if vc.Sending() {
		t.Fatal("SetSending(false) ignored")
	}
}
