package library

import (
	"sync"

	"peerhood/internal/device"
	"peerhood/internal/plugin"
	"peerhood/internal/record"
)

// The session-continuity layer: a VirtualConnection whose identity (ConnID +
// negotiated token) is decoupled from the bearer address, with the byte
// stream framed as sequence-numbered records (internal/record). The sender buffers
// the un-acked tail in a bounded SendWindow; the receiver delivers in order
// and deduplicates by sequence; after a handover the tail is retransmitted
// over the new route (PH_RESUME), so the application sees zero byte loss and
// no duplicates where the legacy path tears the stream.
//
// Concurrency contract: all window and buffer state lives under ct.mu. At
// most one goroutine pulls records from the transport at a time (ct.reading,
// handed off via ct.cond); everyone else waits on the condition variable and
// re-examines state after each pulled record. All wire writes — data frames,
// acks, probes, retransmission sweeps — serialise on ct.wlock. Lock order is
// wlock → (vc.mu | ct.mu), one at a time; ct.cond is only ever waited on
// under ct.mu without wlock held, so a blocked writer can never starve the
// puller's ack path.
const (
	// contAckEvery is the receiver's ack cadence: one cumulative ack per
	// this many delivered frames (dups, gaps, and probes ack immediately).
	contAckEvery = 4
	// contMaxFrame caps one frame's payload; larger writes are chunked.
	contMaxFrame = 16 << 10
	// contRecvBufMax bounds the receiver's undelivered buffer: past it the
	// cadence ack is withheld (released by the application's next Read), so
	// a fast sender stalls on its window instead of growing our memory.
	contRecvBufMax = 256 << 10
)

// continuityState is the per-connection continuity window state.
type continuityState struct {
	token uint64
	rr    *record.RecordReader

	mu      sync.Mutex
	cond    *sync.Cond // signalled after every pulled record and on close
	send    *record.SendWindow
	recv    *record.RecvWindow
	pending []byte // delivered in-order, not yet read by the application
	pendOff int
	reading bool // a puller currently owns the transport's read side

	sinceAck int
	ackHold  bool
	// retransUntil suppresses the duplicate-ack fast retransmit for stall
	// values below it. A retransmitted tail whose frames were already
	// delivered comes back as one immediate ack per duplicate drop; without
	// the high-water mark each of those echoes would be mistaken for fresh
	// loss and re-trigger the sweep — a self-sustaining duplicate storm.
	retransUntil uint32

	syncedGen int  // transport generation the last sweep covered
	forceSync bool // next sweep runs regardless of generation

	retransFrames int64
	retransBytes  int64
	resumes       int64

	wlock sync.Mutex // serialises all wire writes for this connection
}

// ContinuityStats is a snapshot of a connection's continuity counters, for
// experiments and diagnostics.
type ContinuityStats struct {
	// Sender side.
	RetransFrames int64
	RetransBytes  int64
	SendBuffered  int
	SendHighWater int
	SendWindowMax int
	AckedSeq      uint32
	// Receiver side.
	DeliveredBytes int64
	DupFrames      int64
	DupBytes       int64
	GapFrames      int64
	GapBytes       int64
	// Resumes is how many times the session survived a bearer substitution
	// with its window intact.
	Resumes int64
}

// enableContinuity installs the continuity layer. It must run before any
// data flows on the connection (right after the hello/ack exchange).
func (vc *VirtualConnection) enableContinuity(token uint64, windowBytes int) {
	ct := &continuityState{
		token: token,
		send:  record.NewSendWindow(windowBytes),
		recv:  record.NewRecvWindow(),
	}
	ct.cond = sync.NewCond(&ct.mu)
	ct.rr = record.NewRecordReader(contReader{vc})
	vc.cont = ct
}

// ContinuityEnabled reports whether this connection negotiated the
// continuity window.
func (vc *VirtualConnection) ContinuityEnabled() bool { return vc.cont != nil }

// ContinuityToken returns the session token (zero without continuity).
func (vc *VirtualConnection) ContinuityToken() uint64 {
	if vc.cont == nil {
		return 0
	}
	return vc.cont.token
}

// Resumes returns how many zero-loss bearer substitutions this connection
// went through (always zero for legacy connections — those Restart or Swap).
func (vc *VirtualConnection) Resumes() int {
	if vc.cont == nil {
		return 0
	}
	ct := vc.cont
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return int(ct.resumes)
}

// ContinuityStats snapshots the window counters.
func (vc *VirtualConnection) ContinuityStats() ContinuityStats {
	if vc.cont == nil {
		return ContinuityStats{}
	}
	ct := vc.cont
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ContinuityStats{
		RetransFrames:  ct.retransFrames,
		RetransBytes:   ct.retransBytes,
		SendBuffered:   ct.send.Buffered(),
		SendHighWater:  ct.send.HighWater(),
		SendWindowMax:  ct.send.Max(),
		AckedSeq:       ct.send.Acked(),
		DeliveredBytes: ct.recv.Delivered,
		DupFrames:      ct.recv.DupFrames,
		DupBytes:       ct.recv.DupBytes,
		GapFrames:      ct.recv.GapFrames,
		GapBytes:       ct.recv.GapBytes,
		Resumes:        ct.resumes,
	}
}

// ContinuityRecvSeq returns the receiver's cumulative position — what a
// PH_RESUME advertises so the peer can trim its window and replay only the
// un-received tail. Zero without continuity.
func (vc *VirtualConnection) ContinuityRecvSeq() uint32 {
	if vc.cont == nil {
		return 0
	}
	return vc.contRecvSeq()
}

// contRecvSeq returns the receiver's cumulative position — what a PH_RESUME
// or PH_RESUME_ACK advertises.
func (vc *VirtualConnection) contRecvSeq() uint32 {
	ct := vc.cont
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.recv.AckSeq()
}

// contReader adapts the virtual connection's swap-aware retry loop to the
// record reader: a transport failure waits for the handover to substitute a
// bearer, runs the retransmission sweep for our own un-acked tail, and
// resumes reading on the new transport. Torn bytes from the old bearer are
// the record reader's CRC-resync problem; duplicated frames are the receive
// window's.
type contReader struct{ vc *VirtualConnection }

func (r contReader) Read(p []byte) (int, error) {
	vc := r.vc
	for {
		c, gen, genCh, err := vc.current()
		if err != nil {
			return 0, err
		}
		n, rerr := c.Read(p)
		if rerr == nil || n > 0 {
			return n, rerr
		}
		if !vc.shouldAwaitSwap() {
			return 0, rerr
		}
		if !vc.awaitSwap(gen, genCh) {
			return 0, rerr
		}
		vc.contSync()
	}
}

// contRead implements Read for continuity connections: drain the in-order
// pending buffer, pulling records from the transport when it runs dry.
func (vc *VirtualConnection) contRead(p []byte) (int, error) {
	ct := vc.cont
	for {
		select {
		case <-vc.closeCh:
			return 0, ErrClosed
		default:
		}
		ct.mu.Lock()
		if ct.pendOff < len(ct.pending) {
			n := copy(p, ct.pending[ct.pendOff:])
			ct.pendOff += n
			if ct.pendOff == len(ct.pending) {
				ct.pending = ct.pending[:0]
				ct.pendOff = 0
			}
			var ackSeq uint32
			release := ct.ackHold && len(ct.pending)-ct.pendOff <= contRecvBufMax
			if release {
				ct.ackHold = false
				ct.sinceAck = 0
				ackSeq = ct.recv.AckSeq()
			}
			ct.mu.Unlock()
			if release {
				vc.contWriteAck(ackSeq)
			}
			return n, nil
		}
		if err := vc.contPullStep(); err != nil {
			return 0, err
		}
	}
}

// contPullStep advances the shared pull state by one record: become the
// puller if the slot is free, otherwise wait for the active puller's next
// record. Callers hold ct.mu on entry; it is released on return.
func (vc *VirtualConnection) contPullStep() error {
	ct := vc.cont
	if ct.reading {
		ct.cond.Wait()
		ct.mu.Unlock()
		return nil
	}
	ct.reading = true
	ct.mu.Unlock()
	err := vc.contPullOnce()
	ct.mu.Lock()
	ct.reading = false
	ct.cond.Broadcast()
	ct.mu.Unlock()
	return err
}

// contPullOnce reads one record from the transport and dispatches it. The
// caller owns the pull slot.
func (vc *VirtualConnection) contPullOnce() error {
	ct := vc.cont
	rec, err := ct.rr.Next()
	if err != nil {
		return err
	}
	if rec.TaskID != vc.id {
		return nil // another session's record leaked through a relay; drop
	}
	var wantAck, wantSync bool
	ct.mu.Lock()
	switch rec.Kind {
	case record.KindWindowData:
		switch ct.recv.Accept(rec.Seq, len(rec.Payload)) {
		case record.RecvDeliver:
			ct.pending = append(ct.pending, rec.Payload...)
			ct.sinceAck++
			if ct.sinceAck >= contAckEvery {
				if len(ct.pending)-ct.pendOff <= contRecvBufMax {
					ct.sinceAck = 0
					wantAck = true
				} else {
					ct.ackHold = true
				}
			}
		case record.RecvDuplicate:
			// Re-ack immediately so the sender learns its retransmit (or a
			// double delivery across the swap) already landed.
			vc.lib.contDupFrames.Inc()
			vc.lib.contDupBytes.Add(uint64(len(rec.Payload)))
			wantAck = true
		case record.RecvGap:
			// Re-ack immediately: the duplicate cumulative ack tells the
			// sender where to retransmit from.
			wantAck = true
		}
	case record.KindWindowAck:
		if v, perr := record.ParseU32Payload(rec.Payload); perr == nil {
			prev := ct.send.Acked()
			if ct.send.Ack(v) == 0 && v == prev && !ct.send.Empty() && v >= ct.retransUntil {
				// Duplicate cumulative ack with data outstanding: the peer
				// saw a gap. Fast-retransmit the tail once; acks echoing
				// below the retransmitted high mark are the duplicate drops
				// of that sweep coming back, not new loss.
				ct.retransUntil = ct.send.NextSeq()
				ct.forceSync = true
				wantSync = true
			}
		}
	case record.KindWindowProbe:
		ct.sinceAck = 0
		ct.ackHold = false
		wantAck = true
	}
	ackSeq := ct.recv.AckSeq()
	ct.cond.Broadcast()
	ct.mu.Unlock()
	if wantAck {
		// Ack write failures are swallowed: a lost ack is repaired by the
		// next probe or duplicate data frame.
		vc.contWriteAck(ackSeq)
	}
	if wantSync {
		vc.contSync()
	}
	return nil
}

// contWrite implements Write for continuity connections: chunk, buffer each
// chunk in the send window (waiting for space), and put it on the wire. A
// chunk counts as written once buffered — even if the wire write fails the
// window holds it and the post-handover sweep retransmits it, which is
// exactly the partial-write guarantee the legacy path cannot give.
func (vc *VirtualConnection) contWrite(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		chunk := p
		if len(chunk) > contMaxFrame {
			chunk = p[:contMaxFrame]
		}
		if err := vc.contSendFrame(chunk); err != nil {
			return total, err
		}
		total += len(chunk)
		p = p[len(chunk):]
	}
	return total, nil
}

// contSendFrame buffers one chunk and writes its frame.
func (vc *VirtualConnection) contSendFrame(chunk []byte) error {
	ct := vc.cont
	ct.mu.Lock()
	for !ct.send.Fits(len(chunk)) {
		select {
		case <-vc.closeCh:
			ct.mu.Unlock()
			return ErrClosed
		default:
		}
		// Window full: space only opens when an ack is pulled.
		if err := vc.contPullStep(); err != nil {
			return err
		}
		ct.mu.Lock()
	}
	f := ct.send.Append(chunk)
	// Encode under ct.mu: once the lock drops, an ack can recycle the
	// frame's payload buffer at any moment.
	wire, err := record.AppendRecord(nil, record.Record{
		TaskID: vc.id, Seq: f.Seq, Kind: record.KindWindowData, Payload: f.Payload,
	})
	ct.mu.Unlock()
	if err != nil {
		return err
	}

	ct.wlock.Lock()
	defer ct.wlock.Unlock()
	swept, err := vc.contSweepLocked()
	if err != nil || swept {
		// The sweep just replayed the whole un-acked tail — our frame
		// included — on the fresh transport; a wire error leaves the frame
		// safely buffered for the next sweep.
		return nil
	}
	c, _, _, err := vc.current()
	if err != nil {
		return err
	}
	// A failed frame write is not a failed Write: the window holds the
	// bytes and the handover sweep will replay them.
	_, _ = c.Write(wire)
	return nil
}

// contSync runs the retransmission sweep if the transport generation moved
// past the last swept one (or a force is pending).
func (vc *VirtualConnection) contSync() {
	ct := vc.cont
	ct.wlock.Lock()
	defer ct.wlock.Unlock()
	_, _ = vc.contSweepLocked()
}

// contSweepLocked retransmits the un-acked tail when the transport is newer
// than the last sweep (or forceSync is set). Caller holds ct.wlock. Returns
// whether a sweep ran.
func (vc *VirtualConnection) contSweepLocked() (bool, error) {
	ct := vc.cont
	c, gen, _, err := vc.current()
	if err != nil {
		return false, err
	}
	ct.mu.Lock()
	if gen == ct.syncedGen && !ct.forceSync {
		ct.mu.Unlock()
		return false, nil
	}
	ct.syncedGen = gen
	ct.forceSync = false
	var wire []byte
	frames, bytes := 0, 0
	ct.send.Unacked(func(f record.SendFrame) {
		b, aerr := record.AppendRecord(wire, record.Record{
			TaskID: vc.id, Seq: f.Seq, Kind: record.KindWindowData, Payload: f.Payload,
		})
		if aerr != nil {
			return
		}
		wire = b
		frames++
		bytes += len(f.Payload)
	})
	ct.retransFrames += int64(frames)
	ct.retransBytes += int64(bytes)
	ct.mu.Unlock()
	if frames > 0 {
		vc.lib.contRetransFrames.Add(uint64(frames))
		vc.lib.contRetransBytes.Add(uint64(bytes))
		if _, werr := c.Write(wire); werr != nil {
			// The tail stays buffered; the next swap sweeps again.
			ct.mu.Lock()
			ct.forceSync = true
			ct.mu.Unlock()
			return true, nil
		}
	}
	return true, nil
}

// contWriteAck sends a cumulative ack for seq.
func (vc *VirtualConnection) contWriteAck(seq uint32) {
	vc.contWriteControl(record.KindWindowAck, seq)
}

// contWriteProbe solicits an immediate ack from the peer.
func (vc *VirtualConnection) contWriteProbe() {
	ct := vc.cont
	ct.mu.Lock()
	seq := ct.send.NextSeq() - 1
	ct.mu.Unlock()
	vc.contWriteControl(record.KindWindowProbe, seq)
}

func (vc *VirtualConnection) contWriteControl(kind record.RecordKind, seq uint32) {
	ct := vc.cont
	ct.wlock.Lock()
	defer ct.wlock.Unlock()
	c, _, _, err := vc.current()
	if err != nil {
		return
	}
	_ = record.WriteRecord(c, record.Record{
		TaskID: vc.id, Seq: seq, Kind: kind, Payload: record.U32Payload(seq),
	})
}

// Flush blocks until every buffered frame is acknowledged by the peer —
// the drain handshake an application (or experiment) uses to prove zero
// in-flight loss. It probes for acks and retransmits on stall, so it
// converges even across silent frame loss.
func (vc *VirtualConnection) Flush() error {
	ct := vc.cont
	if ct == nil {
		return nil
	}
	var lastAcked uint32
	first := true
	for {
		select {
		case <-vc.closeCh:
			return ErrClosed
		default:
		}
		ct.mu.Lock()
		if ct.send.Empty() {
			ct.mu.Unlock()
			return nil
		}
		acked := ct.send.Acked()
		stalled := !first && acked == lastAcked
		lastAcked, first = acked, false
		if stalled {
			ct.forceSync = true
		}
		ct.mu.Unlock()
		if stalled {
			vc.contSync()
		}
		vc.contWriteProbe()
		ct.mu.Lock()
		if err := vc.contPullStep(); err != nil {
			return err
		}
	}
}

// ResumeSwap substitutes the transport like SwapRoute but keeps the
// continuity session: the peer's advertised receive position trims the send
// window, and the remaining un-acked tail is retransmitted on the new
// transport immediately.
func (vc *VirtualConnection) ResumeSwap(newConn plugin.Conn, bridge device.Addr, peerRecvSeq uint32) {
	vc.resumePrep(peerRecvSeq)
	vc.SwapRoute(newConn, bridge)
	vc.contSync()
}

// ResumeSwapTo is ResumeSwap with the logical target switched to a sibling
// interface (vertical handover).
func (vc *VirtualConnection) ResumeSwapTo(newConn plugin.Conn, target, bridge device.Addr, peerRecvSeq uint32) {
	vc.resumePrep(peerRecvSeq)
	vc.SwapRouteTo(newConn, target, bridge)
	vc.contSync()
}

func (vc *VirtualConnection) resumePrep(peerRecvSeq uint32) {
	ct := vc.cont
	ct.mu.Lock()
	ct.send.Ack(peerRecvSeq)
	ct.resumes++
	// Force the post-swap sweep even if a racing path already observed the
	// new generation, and arm the duplicate-ack suppressor over the whole
	// replayed tail: frames the peer received after advertising its resume
	// position come back as duplicate-drop acks, not new loss.
	ct.forceSync = true
	ct.retransUntil = ct.send.NextSeq()
	ct.mu.Unlock()
	vc.lib.contResumes.Inc()
}

// MarkRestartContinuity records a lossy service reconnection of a
// continuity session: the stream restarts from scratch against the new
// provider under a freshly negotiated token. Whatever the old provider had
// not acknowledged is gone — exactly the legacy restart semantics, which is
// why experiments count Restarts separately from Resumes.
func (vc *VirtualConnection) MarkRestartContinuity(newConn plugin.Conn, target device.Addr, bridge device.Addr, token uint64) {
	ct := vc.cont
	ct.mu.Lock()
	ct.token = token
	ct.send = record.NewSendWindow(ct.send.Max())
	ct.recv = record.NewRecvWindow()
	ct.pending = nil
	ct.pendOff = 0
	ct.sinceAck = 0
	ct.ackHold = false
	ct.retransUntil = 0
	ct.forceSync = false
	ct.mu.Unlock()
	vc.MarkRestart(newConn, target, bridge)
}
