package library_test

import (
	"errors"
	"testing"

	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/library"
	"peerhood/internal/phtest"
)

// contEchoService is echoService with the server-side VirtualConnection
// exposed, so tests can inspect the far end's continuity counters.
func contEchoService(t *testing.T, n *phtest.Node) chan *library.VirtualConnection {
	t.Helper()
	srvCh := make(chan *library.VirtualConnection, 1)
	_, err := n.Lib.RegisterService("echo", "test", func(vc *library.VirtualConnection, meta library.ConnectionMeta) {
		srvCh <- vc
		defer vc.Close()
		buf := make([]byte, 256)
		for {
			nr, err := vc.Read(buf)
			if err != nil {
				return
			}
			if _, err := vc.Write(buf[:nr]); err != nil {
				return
			}
		}
	})
	if err != nil {
		t.Fatalf("RegisterService(echo): %v", err)
	}
	return srvCh
}

func TestContinuityEchoDirect(t *testing.T) {
	w := phtest.InstantWorld(t, 20)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)
	contEchoService(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	vc, err := a.Lib.Connect(b.Addr(), "echo", library.WithContinuity())
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	defer vc.Close()
	if !vc.ContinuityEnabled() {
		t.Fatal("continuity not negotiated against a continuity-capable peer")
	}
	if vc.ContinuityToken() == 0 {
		t.Fatal("continuity token is zero")
	}

	buf := make([]byte, 64)
	for _, msg := range []string{"ping", "a longer payload to frame", "x"} {
		if _, err := vc.Write([]byte(msg)); err != nil {
			t.Fatalf("Write(%q): %v", msg, err)
		}
		n, err := vc.Read(buf)
		if err != nil || string(buf[:n]) != msg {
			t.Fatalf("Read = %q, %v, want %q", buf[:n], err, msg)
		}
	}
	// Flush drains the send window: everything written has been acked.
	if err := vc.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	st := vc.ContinuityStats()
	if st.SendBuffered != 0 {
		t.Fatalf("post-flush send buffer = %d bytes", st.SendBuffered)
	}
	if st.DupFrames != 0 || st.GapFrames != 0 {
		t.Fatalf("clean run saw dup=%d gap=%d frames", st.DupFrames, st.GapFrames)
	}
}

func TestContinuityResumeReplaysUnackedTail(t *testing.T) {
	// The tentpole scenario: the bearer dies with un-acked bytes in flight,
	// the connection re-attaches with PH_RESUME on a fresh transport, and
	// the tail is replayed — nothing lost, nothing duplicated.
	w := phtest.InstantWorld(t, 21)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)
	srvCh := contEchoService(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	vc, err := a.Lib.Connect(b.Addr(), "echo", library.WithContinuity())
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	srv := <-srvCh

	buf := make([]byte, 64)
	if _, err := vc.Write([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if n, err := vc.Read(buf); err != nil || string(buf[:n]) != "alpha" {
		t.Fatalf("pre-handover read = %q, %v", buf[:n], err)
	}

	// Kill the bearer, then write while it is dead: the bytes must land in
	// the send window, not on the floor.
	_ = vc.Transport().Close()
	if n, err := vc.Write([]byte("gamma")); err != nil || n != 5 {
		t.Fatalf("write on dead bearer = %d, %v (want buffered as written)", n, err)
	}

	// Re-attach over a fresh transport with PH_RESUME, as the handover
	// thread would.
	entry, _ := a.Daemon.Storage().Lookup(b.Addr())
	route, _ := entry.Best()
	resume := &library.ResumeInfo{Token: vc.ContinuityToken(), RecvSeq: vc.ContinuityRecvSeq()}
	raw, err := a.Lib.ConnectVia(library.Via{
		Route: route, Target: b.Addr(), ServiceName: "echo",
		ServicePort: vc.Service().Port, ConnID: vc.ID(), Resume: resume,
	})
	if err != nil {
		t.Fatalf("ConnectVia(resume): %v", err)
	}
	vc.ResumeSwap(raw, device.Addr{}, resume.PeerRecvSeq)

	if n, err := vc.Read(buf); err != nil || string(buf[:n]) != "gamma" {
		t.Fatalf("post-resume read = %q, %v", buf[:n], err)
	}
	if err := vc.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	if vc.Resumes() != 1 || vc.Swaps() != 1 || vc.Restarts() != 0 {
		t.Fatalf("resumes=%d swaps=%d restarts=%d, want 1/1/0",
			vc.Resumes(), vc.Swaps(), vc.Restarts())
	}
	cst, sst := vc.ContinuityStats(), srv.ContinuityStats()
	if cst.RetransFrames == 0 {
		t.Fatal("resume with a buffered tail replayed nothing")
	}
	if cst.DupFrames != 0 || sst.DupFrames != 0 {
		t.Fatalf("duplicates delivered: client=%d server=%d", cst.DupFrames, sst.DupFrames)
	}
	if sst.DeliveredBytes != int64(len("alpha")+len("gamma")) {
		t.Fatalf("server delivered %d bytes, want %d", sst.DeliveredBytes, len("alpha")+len("gamma"))
	}
}

func TestContinuityLegacyPeerFallsBack(t *testing.T) {
	// A peer whose engine predates the continuity extension hangs up on the
	// flagged hello; Connect must retry the same route flagless and hand
	// back a plain (lossy) connection rather than failing.
	w := phtest.InstantWorld(t, 22)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)

	// Swap b's library for one that mimics a legacy engine.
	b.Lib.Stop()
	legacy, err := library.New(library.Config{Daemon: b.Daemon, DisableContinuity: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.Start(); err != nil {
		t.Fatal(err)
	}
	b.Lib = legacy
	contEchoService(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	vc, err := a.Lib.Connect(b.Addr(), "echo", library.WithContinuity())
	if err != nil {
		t.Fatalf("Connect against legacy peer: %v", err)
	}
	defer vc.Close()
	if vc.ContinuityEnabled() {
		t.Fatal("negotiated continuity against a legacy peer")
	}
	if _, err := vc.Write([]byte("plain")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if n, err := vc.Read(buf); err != nil || string(buf[:n]) != "plain" {
		t.Fatalf("legacy echo = %q, %v", buf[:n], err)
	}
}

func TestResumeBadTokenRejected(t *testing.T) {
	// PH_RESUME must prove session ownership: a wrong token is refused with
	// an explicit PH_RESUME_ACK failure, not silently attached.
	w := phtest.InstantWorld(t, 23)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)
	contEchoService(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	vc, err := a.Lib.Connect(b.Addr(), "echo", library.WithContinuity())
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	entry, _ := a.Daemon.Storage().Lookup(b.Addr())
	route, _ := entry.Best()
	_, err = a.Lib.ConnectVia(library.Via{
		Route: route, Target: b.Addr(), ServiceName: "echo",
		ServicePort: vc.Service().Port, ConnID: vc.ID(),
		Resume: &library.ResumeInfo{Token: vc.ContinuityToken() + 1, RecvSeq: 0},
	})
	if !errors.Is(err, library.ErrRejected) {
		t.Fatalf("resume with bad token: %v, want ErrRejected", err)
	}
}

func TestOnSwapCallbackMayTouchConnection(t *testing.T) {
	// Regression pin: SwapRoute must invoke the OnSwap callback outside
	// vc.mu. A callback that calls back into the connection's lock-taking
	// accessors (the natural thing for an application to do) would deadlock
	// if the callback ever ran under the lock.
	w := phtest.InstantWorld(t, 24)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)
	contEchoService(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	reentered := make(chan int, 1)
	vc.OnSwap(func(oldR, newR device.Addr) {
		// Each of these takes vc.mu.
		_ = vc.Bridge()
		_ = vc.RemoteAddr()
		reentered <- vc.Generation()
	})

	entry, _ := a.Daemon.Storage().Lookup(b.Addr())
	route, _ := entry.Best()
	raw, err := a.Lib.ConnectVia(library.Via{
		Route: route, Target: b.Addr(), ServiceName: "echo",
		ServicePort: vc.Service().Port, ConnID: vc.ID(), Reconnect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	vc.SwapRoute(raw, device.Addr{})
	if gen := <-reentered; gen != 2 {
		t.Fatalf("generation observed from OnSwap = %d, want 2", gen)
	}
}
