module peerhood

go 1.24
