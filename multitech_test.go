package peerhood_test

import (
	"testing"

	"peerhood"
	"peerhood/internal/phtest"
)

// The multi-radio worlds in this file come from phtest's S5-backed fixture
// (the hotspot-archipelago radio profile): one helper call per world/node.

// TestMultiTechDiscovery: a device carrying Bluetooth and WLAN radios
// (PeerHood's multi-plugin design, §2.2) is discovered independently on
// each technology; each interface stays its own storage row, keyed by its
// MAC (§2.3) — and the identity plane groups the two rows as one device.
func TestMultiTechDiscovery(t *testing.T) {
	w := phtest.MultiTechWorld(t, 31)
	dual := phtest.AddMultiTechNode(t, w, "dual", peerhood.Pt(5, 0), peerhood.Static,
		peerhood.Bluetooth, peerhood.WLAN)
	observer := phtest.AddMultiTechNode(t, w, "observer", peerhood.Pt(0, 0), peerhood.Static,
		peerhood.Bluetooth, peerhood.WLAN)

	w.RunDiscoveryRounds(2)

	devs := observer.Devices()
	if len(devs) != 2 {
		t.Fatalf("observer knows %d entries, want 2 (one per radio):\n%s",
			len(devs), observer.StorageTable())
	}
	btAddr, _ := dual.AddrFor(peerhood.Bluetooth)
	wlanAddr, _ := dual.AddrFor(peerhood.WLAN)
	if _, ok := observer.LookupDevice(btAddr); !ok {
		t.Fatal("BT interface not discovered")
	}
	if _, ok := observer.LookupDevice(wlanAddr); !ok {
		t.Fatal("WLAN interface not discovered")
	}

	// The identity plane: each interface advertises the other as a
	// sibling, so the observer groups the two rows under one device.
	sibs := observer.SiblingsOf(btAddr)
	if len(sibs) != 1 || sibs[0].Info.Addr != wlanAddr {
		t.Fatalf("SiblingsOf(bt) = %v, want the WLAN interface", sibs)
	}
	sibs = observer.SiblingsOf(wlanAddr)
	if len(sibs) != 1 || sibs[0].Info.Addr != btAddr {
		t.Fatalf("SiblingsOf(wlan) = %v, want the BT interface", sibs)
	}
	be, _ := observer.LookupDevice(btAddr)
	we, _ := observer.LookupDevice(wlanAddr)
	if be.Identity() != we.Identity() {
		t.Fatalf("interfaces carry different identities: %q vs %q", be.Identity(), we.Identity())
	}
}

// TestServiceReachableOnEitherTech: a service registered once is
// advertised on every radio, and the observer can connect over whichever
// technology it prefers — by interface address or by the WithTech
// preference, which resolves the sibling interface through the identity
// plane.
func TestServiceReachableOnEitherTech(t *testing.T) {
	w := phtest.MultiTechWorld(t, 32)
	dual := phtest.AddMultiTechNode(t, w, "dual", peerhood.Pt(5, 0), peerhood.Static,
		peerhood.Bluetooth, peerhood.WLAN)
	observer := phtest.AddMultiTechNode(t, w, "observer", peerhood.Pt(0, 0), peerhood.Static,
		peerhood.Bluetooth, peerhood.WLAN)

	if _, err := dual.RegisterService("echo", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
		defer c.Close()
		buf := make([]byte, 64)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}

	w.RunDiscoveryRounds(2)

	providers := observer.Providers("echo")
	if len(providers) != 2 {
		t.Fatalf("providers = %d, want 2 (one per technology)", len(providers))
	}

	for _, tech := range []peerhood.Tech{peerhood.Bluetooth, peerhood.WLAN} {
		addr, _ := dual.AddrFor(tech)
		conn, err := observer.Connect(addr, "echo")
		if err != nil {
			t.Fatalf("connect over %v: %v", tech, err)
		}
		echoRoundTrip(t, conn, tech)
	}

	// Tech preference: name the BT interface but ask for WLAN — the
	// identity plane retargets the dial onto the sibling.
	btAddr, _ := dual.AddrFor(peerhood.Bluetooth)
	wlanAddr, _ := dual.AddrFor(peerhood.WLAN)
	conn, err := observer.Connect(btAddr, "echo", peerhood.WithTech(peerhood.WLAN))
	if err != nil {
		t.Fatalf("connect with WLAN preference: %v", err)
	}
	if got := conn.Target(); got != wlanAddr {
		t.Fatalf("WithTech(WLAN) dialed %v, want %v", got, wlanAddr)
	}
	echoRoundTrip(t, conn, peerhood.WLAN)
}

func echoRoundTrip(t *testing.T, conn *peerhood.Connection, tech peerhood.Tech) {
	t.Helper()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatalf("write over %v: %v", tech, err)
	}
	buf := make([]byte, 8)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("read over %v: %v", tech, err)
	}
	_ = conn.Close()
}

// TestChainedHandovers: a connection hands over twice in a row (bridge A
// then bridge B), each time excluding its current first hop — the
// walking-past-successive-bridges pattern of fig 5.6.
func TestChainedHandovers(t *testing.T) {
	w := phtest.MultiTechWorld(t, 33)
	server := phtest.AddMultiTechNode(t, w, "server", peerhood.Pt(0, 0), peerhood.Static)
	// Both bridges sit ~3.1 m from phone and server: every bridge hop
	// clears the 230 threshold while the 6 m direct link (~210) does not.
	b1 := phtest.AddMultiTechNode(t, w, "b1", peerhood.Pt(3, 0.8), peerhood.Static)
	b2 := phtest.AddMultiTechNode(t, w, "b2", peerhood.Pt(3, -0.8), peerhood.Static)
	phone := phtest.AddMultiTechNode(t, w, "phone", peerhood.Pt(6, 0), peerhood.Dynamic)

	if _, err := server.RegisterService("sink", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
		defer c.Close()
		buf := make([]byte, 256)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}

	w.RunDiscoveryRounds(3)

	// Phone at 6m from server: direct quality ~210 < 230 — handover #1
	// should pick one of the bridges (each ~3m away, quality ~234).
	conn, err := phone.Connect(server.Addr(), "sink")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	th, err := phone.MonitorHandover(conn, peerhood.HandoverConfig{ManualSteps: true, LowLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	th.Step()
	th.Step()
	if conn.Swaps() != 1 {
		t.Fatalf("first handover: swaps = %d", conn.Swaps())
	}
	firstBridge := conn.Bridge()
	if firstBridge.IsZero() {
		t.Fatal("first handover did not pick a bridge")
	}

	// The chosen bridge walks out of usable range (quality < 230 towards
	// the phone); the second handover must pick the *other* bridge.
	mover := b1
	if firstBridge == b2.Addr() {
		mover = b2
	}
	mover.SetModel(peerhood.StayAt(peerhood.Pt(12, 8)))
	w.RunDiscoveryRounds(2)

	th.Step()
	th.Step()
	if conn.Swaps() != 2 {
		t.Fatalf("second handover: swaps = %d, want 2", conn.Swaps())
	}
	second := conn.Bridge()
	if second == firstBridge || second.IsZero() {
		t.Fatalf("second handover reused the failing bridge: %v", second)
	}
	if _, err := conn.Write([]byte("alive after two handovers")); err != nil {
		t.Fatal(err)
	}
}
