package peerhood_test

import (
	"testing"

	"peerhood"
)

// TestMultiTechDiscovery: a device carrying Bluetooth and WLAN radios
// (PeerHood's multi-plugin design, §2.2) is discovered independently on
// each technology; each interface is its own storage entry, keyed by its
// MAC (§2.3).
func TestMultiTechDiscovery(t *testing.T) {
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: 31, Instant: true})
	defer w.Close()

	dual, err := w.NewNode(peerhood.NodeConfig{
		Name:     "dual",
		Position: peerhood.Pt(5, 0),
		Techs:    []peerhood.Tech{peerhood.Bluetooth, peerhood.WLAN},
	})
	if err != nil {
		t.Fatal(err)
	}
	observer, err := w.NewNode(peerhood.NodeConfig{
		Name:     "observer",
		Position: peerhood.Pt(0, 0),
		Techs:    []peerhood.Tech{peerhood.Bluetooth, peerhood.WLAN},
	})
	if err != nil {
		t.Fatal(err)
	}

	w.RunDiscoveryRounds(2)

	devs := observer.Devices()
	if len(devs) != 2 {
		t.Fatalf("observer knows %d entries, want 2 (one per radio):\n%s",
			len(devs), observer.StorageTable())
	}
	btAddr, _ := dual.AddrFor(peerhood.Bluetooth)
	wlanAddr, _ := dual.AddrFor(peerhood.WLAN)
	if _, ok := observer.LookupDevice(btAddr); !ok {
		t.Fatal("BT interface not discovered")
	}
	if _, ok := observer.LookupDevice(wlanAddr); !ok {
		t.Fatal("WLAN interface not discovered")
	}
}

// TestServiceReachableOnEitherTech: a service registered once is
// advertised on every radio, and the observer can connect over whichever
// technology it prefers.
func TestServiceReachableOnEitherTech(t *testing.T) {
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: 32, Instant: true})
	defer w.Close()

	dual, err := w.NewNode(peerhood.NodeConfig{
		Name:     "dual",
		Position: peerhood.Pt(5, 0),
		Techs:    []peerhood.Tech{peerhood.Bluetooth, peerhood.WLAN},
	})
	if err != nil {
		t.Fatal(err)
	}
	observer, err := w.NewNode(peerhood.NodeConfig{
		Name:     "observer",
		Position: peerhood.Pt(0, 0),
		Techs:    []peerhood.Tech{peerhood.Bluetooth, peerhood.WLAN},
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := dual.RegisterService("echo", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
		defer c.Close()
		buf := make([]byte, 64)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}

	w.RunDiscoveryRounds(2)

	providers := observer.Providers("echo")
	if len(providers) != 2 {
		t.Fatalf("providers = %d, want 2 (one per technology)", len(providers))
	}

	for _, tech := range []peerhood.Tech{peerhood.Bluetooth, peerhood.WLAN} {
		addr, _ := dual.AddrFor(tech)
		conn, err := observer.Connect(addr, "echo")
		if err != nil {
			t.Fatalf("connect over %v: %v", tech, err)
		}
		if _, err := conn.Write([]byte("x")); err != nil {
			t.Fatalf("write over %v: %v", tech, err)
		}
		buf := make([]byte, 8)
		if _, err := conn.Read(buf); err != nil {
			t.Fatalf("read over %v: %v", tech, err)
		}
		_ = conn.Close()
	}
}

// TestChainedHandovers: a connection hands over twice in a row (bridge A
// then bridge B), each time excluding its current first hop — the
// walking-past-successive-bridges pattern of fig 5.6.
func TestChainedHandovers(t *testing.T) {
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: 33, Instant: true})
	defer w.Close()

	server, err := w.NewNode(peerhood.NodeConfig{Name: "server", Position: peerhood.Pt(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	// Both bridges sit ~3.1 m from phone and server: every bridge hop
	// clears the 230 threshold while the 6 m direct link (~210) does not.
	b1, err := w.NewNode(peerhood.NodeConfig{Name: "b1", Position: peerhood.Pt(3, 0.8)})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := w.NewNode(peerhood.NodeConfig{Name: "b2", Position: peerhood.Pt(3, -0.8)})
	if err != nil {
		t.Fatal(err)
	}
	phone, err := w.NewNode(peerhood.NodeConfig{Name: "phone", Position: peerhood.Pt(6, 0), Mobility: peerhood.Dynamic})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := server.RegisterService("sink", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
		defer c.Close()
		buf := make([]byte, 256)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}

	w.RunDiscoveryRounds(3)

	// Phone at 6m from server: direct quality ~210 < 230 — handover #1
	// should pick one of the bridges (each ~3m away, quality ~234).
	conn, err := phone.Connect(server.Addr(), "sink")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	th, err := phone.MonitorHandover(conn, peerhood.HandoverConfig{ManualSteps: true, LowLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	th.Step()
	th.Step()
	if conn.Swaps() != 1 {
		t.Fatalf("first handover: swaps = %d", conn.Swaps())
	}
	firstBridge := conn.Bridge()
	if firstBridge.IsZero() {
		t.Fatal("first handover did not pick a bridge")
	}

	// The chosen bridge walks out of usable range (quality < 230 towards
	// the phone); the second handover must pick the *other* bridge.
	mover := b1
	if firstBridge == b2.Addr() {
		mover = b2
	}
	mover.SetModel(peerhood.StayAt(peerhood.Pt(12, 8)))
	w.RunDiscoveryRounds(2)

	th.Step()
	th.Step()
	if conn.Swaps() != 2 {
		t.Fatalf("second handover: swaps = %d, want 2", conn.Swaps())
	}
	second := conn.Bridge()
	if second == firstBridge || second.IsZero() {
		t.Fatalf("second handover reused the failing bridge: %v", second)
	}
	if _, err := conn.Write([]byte("alive after two handovers")); err != nil {
		t.Fatal(err)
	}
}
