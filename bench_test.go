// Benchmarks: one per reproduced table/figure (running the experiment
// harness end to end on the simulated substrate) plus microbenchmarks of
// the hot protocol paths. Regenerate the thesis' numbers with
// cmd/experiments; these benches track the cost of regenerating them.
package peerhood_test

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"peerhood"
	"peerhood/internal/device"
	"peerhood/internal/experiments"
	"peerhood/internal/gnutella"
	"peerhood/internal/migration"
	"peerhood/internal/phproto"
	"peerhood/internal/rng"
	"peerhood/internal/storage"
)

// benchExperiment runs one experiment per iteration in quick mode.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		_, err := experiments.Run(id, experiments.Config{
			Seed:      int64(i + 1),
			TimeScale: 2000,
			Quick:     true,
		})
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
}

// Experiment benches — one per reproduced table/figure (DESIGN.md §4).

func BenchmarkT1MobilityTable(b *testing.B)          { benchExperiment(b, "T1") }
func BenchmarkF33DiscoveryExclusion(b *testing.B)    { benchExperiment(b, "F3.3") }
func BenchmarkF36StorageTable(b *testing.B)          { benchExperiment(b, "F3.6") }
func BenchmarkF39QualityEquity(b *testing.B)         { benchExperiment(b, "F3.9") }
func BenchmarkF310DiscoveryDelay(b *testing.B)       { benchExperiment(b, "F3.10") }
func BenchmarkG1GnutellaVsPeerhood(b *testing.B)     { benchExperiment(b, "G1") }
func BenchmarkE1BridgeInterconnection(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE2RoutingHandover(b *testing.B)        { benchExperiment(b, "E2") }
func BenchmarkE3CorridorWalk(b *testing.B)           { benchExperiment(b, "E3") }
func BenchmarkE4ResultRouting(b *testing.B)          { benchExperiment(b, "E4") }
func BenchmarkF61CoverageAmplification(b *testing.B) { benchExperiment(b, "F6.1") }
func BenchmarkA1RouteAblation(b *testing.B)          { benchExperiment(b, "A1") }

// BenchmarkS1CityBlock runs the scale scenario in quick mode (250 nodes);
// BenchmarkS1CityBlockFull is the real thing — 1,000 mobile nodes, tens of
// seconds per iteration — for tracking the scale harness itself.

func BenchmarkS1CityBlock(b *testing.B) { benchExperiment(b, "S1") }

// BenchmarkS3CommuterCorridor runs the predictive-vs-reactive handover
// corridor in quick mode (its internal time compression is clamped, so
// most of an iteration is scaled-clock waiting, not CPU).
func BenchmarkS3CommuterCorridor(b *testing.B) { benchExperiment(b, "S3") }

// BenchmarkS4UrbanBlackout replays the scripted fault-plane corridor (two
// blackouts, interference, relay crash/restart) in both handover modes on
// a manual clock — pure compute, no wall-clock waiting.
func BenchmarkS4UrbanBlackout(b *testing.B) { benchExperiment(b, "S4") }

// BenchmarkS2DensePlaza runs the delta-vs-full sync scenario in quick mode
// (40 nodes, two churn levels).
func BenchmarkS2DensePlaza(b *testing.B) { benchExperiment(b, "S2") }

func BenchmarkS1CityBlockFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("S1", experiments.Config{Seed: int64(i + 1), TimeScale: 2000}); err != nil {
			b.Fatalf("experiment S1: %v", err)
		}
	}
}

// Microbenchmarks — hot paths of the protocol stack.

func BenchmarkStorageMergeNeighborhood(b *testing.B) {
	st := storage.New(storage.Config{})
	st.AddSelfAddr(device.Addr{Tech: device.TechBluetooth, MAC: "self"})
	bridge := device.Addr{Tech: device.TechBluetooth, MAC: "bridge"}
	st.UpsertDirect(device.Info{Name: "bridge", Addr: bridge, Mobility: device.Static}, 240)

	entries := make([]phproto.NeighborEntry, 64)
	for i := range entries {
		entries[i] = phproto.NeighborEntry{
			Info: device.Info{
				Name: fmt.Sprintf("dev%d", i),
				Addr: device.Addr{Tech: device.TechBluetooth, MAC: fmt.Sprintf("m%03d", i)},
			},
			Jumps:      uint8(i % 4),
			QualitySum: uint32(200 + i),
			QualityMin: uint8(200 + i%50),
		}
	}
	st.MergeNeighborhood(bridge, 240, entries) // warm: scratch, arena, journal
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.MergeNeighborhood(bridge, 240, entries)
	}
}

func BenchmarkStorageWireEntries(b *testing.B) {
	st := storage.New(storage.Config{})
	for i := 0; i < 128; i++ {
		st.UpsertDirect(device.Info{
			Name: fmt.Sprintf("dev%d", i),
			Addr: device.Addr{Tech: device.TechBluetooth, MAC: fmt.Sprintf("m%03d", i)},
		}, 200+i%55)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := st.WireEntries(); len(got) != 128 {
			b.Fatal("missing entries")
		}
	}
}

// BenchmarkStorageWireEntriesSince measures producing a delta (a handful of
// changed rows) against producing the full table from the same 128-entry
// storage — the responder-side cost the versioned sync trades.
func BenchmarkStorageWireEntriesSince(b *testing.B) {
	st := storage.New(storage.Config{})
	for i := 0; i < 128; i++ {
		st.UpsertDirect(device.Info{
			Name: fmt.Sprintf("dev%d", i),
			Addr: device.Addr{Tech: device.TechBluetooth, MAC: fmt.Sprintf("m%03d", i)},
		}, 200+i%55)
	}
	since := st.Digest().Gen
	for i := 0; i < 4; i++ { // four rows change after the peer's last sync
		st.UpsertDirect(device.Info{
			Name: fmt.Sprintf("dev%d", i),
			Addr: device.Addr{Tech: device.TechBluetooth, MAC: fmt.Sprintf("m%03d", i)},
		}, 190)
	}
	st.WireEntriesSince(since) // warm the responder's scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delta, _, ok := st.WireEntriesSince(since)
		if !ok || len(delta.Entries) != 4 {
			b.Fatalf("delta = %+v, %v", delta, ok)
		}
	}
}

func BenchmarkProtoNeighborhoodRoundTrip(b *testing.B) {
	msg := &phproto.Neighborhood{}
	for i := 0; i < 64; i++ {
		msg.Entries = append(msg.Entries, phproto.NeighborEntry{
			Info: device.Info{
				Name:     fmt.Sprintf("device-%d", i),
				Addr:     device.Addr{Tech: device.TechBluetooth, MAC: fmt.Sprintf("02:70:68:00:00:%02x", i)},
				Mobility: device.Hybrid,
				Services: []device.ServiceInfo{{Name: "svc", Port: 10}},
			},
			Jumps:      uint8(i % 5),
			QualitySum: uint32(230 * (i%5 + 1)),
			QualityMin: 230,
		})
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := phproto.Write(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := phproto.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Cap()))
}

func BenchmarkMigrationRecordRoundTrip(b *testing.B) {
	payload := make([]byte, 4096)
	var buf bytes.Buffer
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := migration.WriteRecord(&buf, migration.Record{
			TaskID: 7, Seq: uint32(i), Kind: migration.KindData, Payload: payload,
		}); err != nil {
			b.Fatal(err)
		}
		rr := migration.NewRecordReader(&buf)
		if _, err := rr.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGnutellaFlood(b *testing.B) {
	g := gnutella.RandomConnected(200, 6, rng.New(1))
	holders := map[int]bool{150: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gnutella.Flood(g, i%200, 7, holders)
	}
}

// BenchmarkDiscoveryRoundInstant measures one node's discovery round at
// constant crowd density (6 m lattice spacing, ~8 in-range neighbours) and
// growing world size, for the grid-indexed world and the original
// full-scan world. Per-node cost staying flat as nodes grow means a full
// round over all N nodes is O(N) — sub-quadratic — where the full scan's
// per-node cost grows with N, making its round O(N^2).
func BenchmarkDiscoveryRoundInstant(b *testing.B) {
	for _, mode := range []struct {
		name   string
		linear bool
	}{{"grid", false}, {"fullscan", true}} {
		for _, count := range []int{8, 64, 256, 1024} {
			b.Run(fmt.Sprintf("%s/nodes=%d", mode.name, count), func(b *testing.B) {
				w := peerhood.NewWorld(peerhood.WorldConfig{Seed: 1, Instant: true, LinearScan: mode.linear})
				defer w.Close()
				// Unlimited bandwidth: the warm-up round's info fetches
				// must not sleep on simulated transfer time.
				for _, tech := range device.Techs() {
					p := w.Sim().Params(tech)
					p.Bandwidth = 0
					w.Sim().SetParams(tech, p)
				}
				side := 1
				for side*side < count {
					side++
				}
				nodes := make([]*peerhood.Node, count)
				for i := range nodes {
					n, err := w.NewNode(peerhood.NodeConfig{
						Name:     fmt.Sprintf("n%d", i),
						Position: peerhood.Pt(float64(i%side)*6, float64(i/side)*6),
						// Bridges off and service lists cached: the scan
						// and neighbourhood exchange are what scale with
						// world size, so they are what this measures.
						DisableBridge:        true,
						ServiceCheckInterval: time.Hour,
					})
					if err != nil {
						b.Fatal(err)
					}
					nodes[i] = n
				}
				w.RunDiscoveryRounds(1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					nodes[i%len(nodes)].RunDiscoveryRound()
				}
			})
		}
	}
}

func BenchmarkBridgeRelayThroughput(b *testing.B) {
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: 2, Instant: true})
	defer w.Close()
	server, err := w.NewNode(peerhood.NodeConfig{Name: "server", Position: peerhood.Pt(16, 0)})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.NewNode(peerhood.NodeConfig{Name: "bridge", Position: peerhood.Pt(8, 0)}); err != nil {
		b.Fatal(err)
	}
	client, err := w.NewNode(peerhood.NodeConfig{Name: "client", Position: peerhood.Pt(0, 0)})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := server.RegisterService("echo", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
		defer c.Close()
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
	w.RunDiscoveryRounds(3)

	conn, err := client.Connect(server.Addr(), "echo")
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, 1024)
	buf := make([]byte, 2048)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write(payload); err != nil {
			b.Fatal(err)
		}
		read := 0
		for read < len(payload) {
			n, err := conn.Read(buf)
			if err != nil {
				b.Fatal(err)
			}
			read += n
		}
	}
}

func BenchmarkConnectDirectInstant(b *testing.B) {
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: 3, Instant: true})
	defer w.Close()
	server, err := w.NewNode(peerhood.NodeConfig{Name: "server", Position: peerhood.Pt(3, 0)})
	if err != nil {
		b.Fatal(err)
	}
	client, err := w.NewNode(peerhood.NodeConfig{Name: "client", Position: peerhood.Pt(0, 0)})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := server.RegisterService("noop", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
		_ = c.Close()
	}); err != nil {
		b.Fatal(err)
	}
	w.RunDiscoveryRounds(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := client.Connect(server.Addr(), "noop")
		if err != nil {
			b.Fatal(err)
		}
		_ = conn.Close()
	}
}

// BenchmarkS6Metropolis steps the sharded constant-density city (S6) and
// reports the per-node superstep cost at each scale. The event-driven
// scheduler makes one superstep cost O(active events) rather than O(N),
// so with density held constant the ns/node-step metric should stay flat
// across the scale sweep — that flatness is the scaling curve CI records
// in the benchmark trajectory. Each scale also reports heap-B/node: the
// live heap the stepped world retains per node (measured after a forced
// GC), which the memory-flat work keeps flat from 10k to the million-node
// tier. The 1M tier joins the sweep only when PH_S6_1M=1 — it costs
// minutes and ~1 GB — and CI gates both metrics on it via benchjson's
// -flatgate.
func BenchmarkS6Metropolis(b *testing.B) {
	scales := []int{1000, 10000, 100000}
	if os.Getenv(experiments.MetropolisMillionEnv) == "1" {
		scales = append(scales, 1000000)
	}
	for _, count := range scales {
		b.Run(fmt.Sprintf("nodes=%d", count), func(b *testing.B) {
			runtime.GC()
			var m0 runtime.MemStats
			runtime.ReadMemStats(&m0)
			sw, err := experiments.MetropolisWorld(42, count)
			if err != nil {
				b.Fatal(err)
			}
			defer sw.Close()
			// Warm to steady state: the first supersteps pay placement, the
			// full 10 s spread of discovery phases, and the growth of the
			// per-shard arenas to their high-water marks (after which a step
			// allocates almost nothing). Timing those start-up steps would
			// measure arena growth and the GC assists it triggers — at 1M
			// nodes that is hundreds of MB — instead of the steady per-step
			// cost the flatness claim is about; the forced GC clears the
			// warm-up garbage so the timed steps start from a settled heap.
			for i := 0; i < 12; i++ {
				sw.Step()
			}
			runtime.GC()
			// One op is a full 10-superstep discovery cycle: with
			// -benchtime=1x a single superstep is one sample, too noisy to
			// gate a 25% flatness bound on — a stray GC cycle or scheduler
			// blip doubles it, and per-step load swings with the discovery
			// phase (DiscoveryPhase correlates with the dweller/through-
			// traffic split, so steps alternate dense and sparse candidate
			// sets). Ten steps cover every phase once, making each op the
			// same workload at every scale.
			const stepsPerOp = 10
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for s := 0; s < stepsPerOp; s++ {
					sw.Step()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*stepsPerOp*int64(count)), "ns/node-step")
			runtime.GC()
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			if m1.HeapAlloc > m0.HeapAlloc {
				b.ReportMetric(float64(m1.HeapAlloc-m0.HeapAlloc)/float64(count), "heap-B/node")
			}
		})
	}
}

// BenchmarkS8RushHour runs the quick-mode rush-hour soak (3 real daemons
// over tcpnet loopback, 48 concurrent clients) and reports its throughput
// and tail latency as custom metrics. This is the macro-benchmark the PR 7
// allocation flattening protects: dials cross phproto hello/ack, streams
// cross the engine, and background discovery crosses the storage merge.
func BenchmarkS8RushHour(b *testing.B) {
	var last experiments.RushHourOutcome
	for i := 0; i < b.N; i++ {
		o, err := experiments.RushHourSoak(experiments.Config{Seed: int64(i + 1), Quick: true})
		if err != nil {
			b.Fatalf("experiment S8: %v", err)
		}
		last = o
	}
	b.ReportMetric(float64(last.Conns)/last.Elapsed.Seconds(), "conns/sec")
	b.ReportMetric(float64(last.Bytes)/(1<<20)/last.Elapsed.Seconds(), "MiB/s")
	b.ReportMetric(float64(last.DialP99.Microseconds()), "dial-p99-µs")
	b.ReportMetric(float64(last.StreamP99.Microseconds()), "stream-p99-µs")
}
