// Command peerhoodd runs a real-network PeerHood daemon: discovery over
// UDP, data over TCP (internal/tcpnet). Several daemons on one LAN (or one
// machine, using distinct ports) form a PeerHood neighbourhood; each
// periodically prints its device storage.
//
// Example — two daemons on loopback:
//
//	peerhoodd -name pc    -listen 127.0.0.1:7001 -peers 127.0.0.1:7002 -echo
//	peerhoodd -name phone -listen 127.0.0.1:7002 -peers 127.0.0.1:7001 -mobility dynamic
//
// Inspect either one with: phctl -addr 127.0.0.1:7001
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"peerhood/internal/bridge"
	"peerhood/internal/daemon"
	"peerhood/internal/device"
	"peerhood/internal/library"
	"peerhood/internal/tcpnet"
)

func main() {
	var (
		name     = flag.String("name", "", "device name (required)")
		listen   = flag.String("listen", "127.0.0.1:0", "host:port for TCP data and UDP discovery")
		peers    = flag.String("peers", "", "comma-separated peer addresses to probe")
		mobility = flag.String("mobility", "static", "mobility class: static, hybrid, dynamic")
		echo     = flag.Bool("echo", false, "register a demo echo service")
		noBridge = flag.Bool("no-bridge", false, "disable the hidden bridge service")
		interval = flag.Duration("print-interval", 10*time.Second, "device-storage print period (0 disables)")
		httpAddr = flag.String("http", "", "host:port for the introspection HTTP listener serving Prometheus /metrics and /debug/pprof (empty disables)")
	)
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "peerhoodd: -name is required")
		flag.Usage()
		os.Exit(2)
	}

	var mob device.Mobility
	switch strings.ToLower(*mobility) {
	case "static":
		mob = device.Static
	case "hybrid":
		mob = device.Hybrid
	case "dynamic":
		mob = device.Dynamic
	default:
		log.Fatalf("unknown mobility class %q", *mobility)
	}

	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}

	pl, err := tcpnet.New(tcpnet.Config{Listen: *listen, Peers: peerList})
	if err != nil {
		log.Fatalf("transport: %v", err)
	}
	defer pl.Close()

	d, err := daemon.New(daemon.Config{Name: *name, Mobility: mob, Checksum: uint32(os.Getpid())})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.AddPlugin(pl); err != nil {
		log.Fatal(err)
	}
	pl.Instrument(d.Registry())
	if err := d.Start(true); err != nil {
		log.Fatal(err)
	}
	defer d.Stop()

	if *httpAddr != "" {
		// The pprof import registers its handlers on the default mux;
		// /metrics joins them there. The listener is opt-in, so sharing
		// the default mux is deliberate — this is a debug surface.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = d.Registry().WritePrometheus(w)
		})
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("introspection listener: %v", err)
		}
		log.Printf("introspection: http://%s/metrics and /debug/pprof/", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				log.Printf("introspection listener: %v", err)
			}
		}()
	}

	lib, err := library.New(library.Config{Daemon: d})
	if err != nil {
		log.Fatal(err)
	}
	if err := lib.Start(); err != nil {
		log.Fatal(err)
	}
	defer lib.Stop()

	if !*noBridge {
		b, err := bridge.Attach(bridge.Config{Library: lib})
		if err != nil {
			log.Fatal(err)
		}
		defer b.Close()
	}

	if *echo {
		if _, err := lib.RegisterService("echo", "peerhoodd demo", func(vc *library.VirtualConnection, meta library.ConnectionMeta) {
			defer vc.Close()
			buf := make([]byte, 4096)
			for {
				n, err := vc.Read(buf)
				if err != nil {
					return
				}
				if _, err := vc.Write(buf[:n]); err != nil {
					return
				}
			}
		}); err != nil {
			log.Fatal(err)
		}
	}

	log.Printf("peerhoodd %q listening on %s (peers: %v)", *name, pl.Addr().MAC, peerList)

	var tick <-chan time.Time
	if *interval > 0 {
		t := time.NewTicker(*interval)
		defer t.Stop()
		tick = t.C
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-tick:
			fmt.Printf("--- %s device storage ---\n%s", *name, d.Storage())
		case s := <-sig:
			log.Printf("received %v, shutting down", s)
			return
		}
	}
}
