// Command benchjson converts `go test -bench` text output into a small
// JSON document, for the benchmark trajectory: each PR runs the grid,
// sync, and handover benches, writes BENCH_<pr>.json, and CI uploads it as
// an artifact, so ns/op and allocs/op can be compared across the repo's
// history without re-running old commits.
//
// Usage:
//
//	go test -run=NONE -bench='Storage|S1CityBlock|RoutingHandover' \
//	    -benchmem -benchtime=1x ./... | go run ./cmd/benchjson -pr pr5
//
// Lines that are not benchmark results (package headers, PASS/ok) are
// ignored, so the whole `go test` stream can be piped through unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only under -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Document is the emitted trajectory point.
type Document struct {
	PR         string      `json:"pr"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Generated  time.Time   `json:"generated"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	pr := flag.String("pr", "", "trajectory label, e.g. pr5 or a commit sha (required)")
	out := flag.String("out", "", "output path (default BENCH_<pr>.json)")
	flag.Parse()
	if *pr == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -pr is required")
		flag.Usage()
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", *pr)
	}

	doc := Document{
		PR:        *pr,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Generated: time.Now().UTC(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Echo the stream so benchjson composes into pipelines without
		// swallowing the human-readable output.
		fmt.Println(line)
		if b, ok := parseLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchjson: reading stdin: %v", err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark result lines on stdin")
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), path)
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   100   123456 ns/op   789 B/op   12 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: trimProcs(fields[0]), Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = val
			seen = true
		case "B/op":
			v := val
			b.BytesPerOp = &v
		case "allocs/op":
			v := val
			b.AllocsPerOp = &v
		}
	}
	return b, seen
}

// trimProcs drops the -GOMAXPROCS suffix from a benchmark name.
func trimProcs(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
