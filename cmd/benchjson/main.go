// Command benchjson converts `go test -bench` text output into a small
// JSON document, for the benchmark trajectory: each PR runs the grid,
// sync, and handover benches, writes BENCH_<pr>.json, and CI uploads it as
// an artifact, so ns/op and allocs/op can be compared across the repo's
// history without re-running old commits.
//
// Usage:
//
//	go test -run=NONE -bench='Storage|S1CityBlock|RoutingHandover' \
//	    -benchmem -benchtime=1x ./... | go run ./cmd/benchjson -pr pr5
//
// Lines that are not benchmark results (package headers, PASS/ok) are
// ignored, so the whole `go test` stream can be piped through unfiltered.
//
// With -baseline, the freshly parsed results are additionally compared
// against an earlier document and the exit status reports regressions:
//
//	... | go run ./cmd/benchjson -pr pr6 \
//	    -baseline BENCH_pr5.json -gate 'DiscoveryRound' -maxregress 25
//
// fails (exit 1) if any benchmark matching -gate is more than 25% slower
// (ns/op) than the same-named entry in BENCH_pr5.json. When both sides
// carry -benchmem columns the gate also compares allocs/op: allocation
// counts are deterministic, so the default tolerance is zero — a single
// new allocation per op on a gated bench fails the build (-maxallocregress
// loosens this, in percent).
//
// Independent of any baseline, -allocbudget enforces absolute allocation
// budgets on the freshly parsed results:
//
//	... | go run ./cmd/benchjson -pr pr7 \
//	    -allocbudget 'StorageMergeNeighborhood$=0,EncoderEncode$=1'
//
// fails if a matching benchmark exceeds its budget or was run without
// -benchmem. This is the allocation-budget contract for the daemon's hot
// paths: the budgets live in the CI invocation next to the benches they
// pin, and a regression fails the build even on the first PR that has no
// baseline document yet.
//
// -membudget is the same contract for heap traffic: comma-separated
// regexp=maxBytesPerOp pairs enforced against the -benchmem B/op column.
//
// -flatgate compares two benchmarks inside the fresh document — the
// flatness contract for scaling sweeps, where the claim is "this metric
// at the big scale stays within X% of the small scale", not "this bench
// stayed fast since the last PR":
//
//	... | go run ./cmd/benchjson -pr pr10 -flatgate \
//	    'S6Metropolis/nodes=1000000$:S6Metropolis/nodes=100000$:ns/node-step:25'
//
// Each comma-separated gate is curRegexp:baseRegexp:unit:maxPct, where
// unit is ns/op, B/op, allocs/op, or a custom b.ReportMetric unit; the
// gate fails when the cur value exceeds base by more than maxPct percent,
// or when either side (or the unit) is missing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only under -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. "ns/node-step").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Document is the emitted trajectory point.
type Document struct {
	PR         string      `json:"pr"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Generated  time.Time   `json:"generated"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	pr := flag.String("pr", "", "trajectory label, e.g. pr5 or a commit sha (required)")
	out := flag.String("out", "", "output path (default BENCH_<pr>.json)")
	baseline := flag.String("baseline", "", "earlier BENCH_<pr>.json to gate against (optional)")
	gate := flag.String("gate", ".", "regexp selecting which benchmarks the baseline gate checks")
	maxregress := flag.Float64("maxregress", 25, "max tolerated ns/op regression vs -baseline, percent")
	maxallocregress := flag.Float64("maxallocregress", 0, "max tolerated allocs/op regression vs -baseline, percent")
	allocbudget := flag.String("allocbudget", "", "absolute allocation budgets, comma-separated regexp=maxAllocsPerOp pairs")
	membudget := flag.String("membudget", "", "absolute heap budgets, comma-separated regexp=maxBytesPerOp pairs")
	flatgate := flag.String("flatgate", "", "in-document flatness gates, comma-separated curRegexp:baseRegexp:unit:maxPct")
	flag.Parse()
	if *pr == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -pr is required")
		flag.Usage()
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", *pr)
	}

	doc := Document{
		PR:        *pr,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Generated: time.Now().UTC(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Echo the stream so benchjson composes into pipelines without
		// swallowing the human-readable output.
		fmt.Println(line)
		if b, ok := parseLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchjson: reading stdin: %v", err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark result lines on stdin")
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), path)

	failed := false
	if *allocbudget != "" {
		budgets, err := parseAllocBudgets(*allocbudget)
		if err != nil {
			log.Fatalf("benchjson: bad -allocbudget: %v", err)
		}
		violations := checkAllocBudgets(doc, budgets)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "benchjson: ALLOC BUDGET %s\n", v)
		}
		if len(violations) > 0 {
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: all allocation budgets hold (%s)\n", *allocbudget)
		}
	}
	if *membudget != "" {
		budgets, err := parseAllocBudgets(*membudget)
		if err != nil {
			log.Fatalf("benchjson: bad -membudget: %v", err)
		}
		violations := checkMemBudgets(doc, budgets)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "benchjson: MEM BUDGET %s\n", v)
		}
		if len(violations) > 0 {
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: all heap budgets hold (%s)\n", *membudget)
		}
	}
	if *flatgate != "" {
		gates, err := parseFlatGates(*flatgate)
		if err != nil {
			log.Fatalf("benchjson: bad -flatgate: %v", err)
		}
		violations := checkFlatGates(doc, gates)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "benchjson: FLAT GATE %s\n", v)
		}
		if len(violations) > 0 {
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: all flatness gates hold (%s)\n", *flatgate)
		}
	}
	if *baseline != "" {
		base, err := loadDocument(*baseline)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		re, err := regexp.Compile(*gate)
		if err != nil {
			log.Fatalf("benchjson: bad -gate: %v", err)
		}
		regressions := checkRegressions(doc, base, re, *maxregress, *maxallocregress)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s\n", r)
		}
		if len(regressions) > 0 {
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: no regression >%g%% ns/op, >%g%% allocs/op vs %s (gate %q)\n",
				*maxregress, *maxallocregress, *baseline, *gate)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// allocBudget is one absolute allocation ceiling.
type allocBudget struct {
	re  *regexp.Regexp
	max float64
}

// parseAllocBudgets parses "regexp=max,regexp=max" budget specs.
func parseAllocBudgets(spec string) ([]allocBudget, error) {
	var out []allocBudget
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.LastIndexByte(part, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("%q is not regexp=maxAllocs", part)
		}
		re, err := regexp.Compile(part[:eq])
		if err != nil {
			return nil, err
		}
		max, err := strconv.ParseFloat(part[eq+1:], 64)
		if err != nil || max < 0 {
			return nil, fmt.Errorf("%q: bad budget", part)
		}
		out = append(out, allocBudget{re: re, max: max})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no budgets in %q", spec)
	}
	return out, nil
}

// checkAllocBudgets enforces absolute allocs/op ceilings on the current
// document. A budget whose regexp matches a benchmark that lacks the
// -benchmem column is a violation too: a silently un-instrumented bench
// must not pass as "within budget".
func checkAllocBudgets(doc Document, budgets []allocBudget) []string {
	var out []string
	for _, budget := range budgets {
		matched := false
		for _, b := range doc.Benchmarks {
			if !budget.re.MatchString(b.Name) {
				continue
			}
			matched = true
			if b.AllocsPerOp == nil {
				out = append(out, fmt.Sprintf("%s: run without -benchmem, cannot verify budget %g",
					b.Name, budget.max))
				continue
			}
			if *b.AllocsPerOp > budget.max {
				out = append(out, fmt.Sprintf("%s: %g allocs/op, budget %g",
					b.Name, *b.AllocsPerOp, budget.max))
			}
		}
		if !matched {
			out = append(out, fmt.Sprintf("%s: no benchmark matched (budget %g unverified)",
				budget.re, budget.max))
		}
	}
	return out
}

// checkMemBudgets enforces absolute bytes/op ceilings, with the same
// rules as checkAllocBudgets: a matching bench without the -benchmem
// column, or a budget matching nothing, is a violation too.
func checkMemBudgets(doc Document, budgets []allocBudget) []string {
	var out []string
	for _, budget := range budgets {
		matched := false
		for _, b := range doc.Benchmarks {
			if !budget.re.MatchString(b.Name) {
				continue
			}
			matched = true
			if b.BytesPerOp == nil {
				out = append(out, fmt.Sprintf("%s: run without -benchmem, cannot verify budget %g",
					b.Name, budget.max))
				continue
			}
			if *b.BytesPerOp > budget.max {
				out = append(out, fmt.Sprintf("%s: %g B/op, budget %g",
					b.Name, *b.BytesPerOp, budget.max))
			}
		}
		if !matched {
			out = append(out, fmt.Sprintf("%s: no benchmark matched (budget %g unverified)",
				budget.re, budget.max))
		}
	}
	return out
}

// flatGate is one in-document scaling comparison: the cur benchmark's
// metric must stay within maxPct percent of the base benchmark's.
type flatGate struct {
	cur, base *regexp.Regexp
	unit      string
	maxPct    float64
}

// parseFlatGates parses "curRegexp:baseRegexp:unit:maxPct" gate specs.
func parseFlatGates(spec string) ([]flatGate, error) {
	var out []flatGate
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("%q is not curRegexp:baseRegexp:unit:maxPct", part)
		}
		cur, err := regexp.Compile(fields[0])
		if err != nil {
			return nil, err
		}
		base, err := regexp.Compile(fields[1])
		if err != nil {
			return nil, err
		}
		if fields[2] == "" {
			return nil, fmt.Errorf("%q: empty unit", part)
		}
		maxPct, err := strconv.ParseFloat(fields[3], 64)
		if err != nil || maxPct < 0 {
			return nil, fmt.Errorf("%q: bad percentage", part)
		}
		out = append(out, flatGate{cur: cur, base: base, unit: fields[2], maxPct: maxPct})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no gates in %q", spec)
	}
	return out, nil
}

// metricOf extracts one named metric from a parsed benchmark.
func metricOf(b Benchmark, unit string) (float64, bool) {
	switch unit {
	case "ns/op":
		return b.NsPerOp, true
	case "B/op":
		if b.BytesPerOp == nil {
			return 0, false
		}
		return *b.BytesPerOp, true
	case "allocs/op":
		if b.AllocsPerOp == nil {
			return 0, false
		}
		return *b.AllocsPerOp, true
	default:
		v, ok := b.Extra[unit]
		return v, ok
	}
}

// checkFlatGates enforces in-document flatness gates. Both sides must
// exist and carry the unit: a sweep tier that silently did not run must
// not pass as flat.
func checkFlatGates(doc Document, gates []flatGate) []string {
	find := func(re *regexp.Regexp) (Benchmark, bool) {
		for _, b := range doc.Benchmarks {
			if re.MatchString(b.Name) {
				return b, true
			}
		}
		return Benchmark{}, false
	}
	var out []string
	for _, g := range gates {
		cur, okC := find(g.cur)
		base, okB := find(g.base)
		if !okC || !okB {
			out = append(out, fmt.Sprintf("%s vs %s: benchmark missing (gate on %s unverified)",
				g.cur, g.base, g.unit))
			continue
		}
		cv, okC := metricOf(cur, g.unit)
		bv, okB := metricOf(base, g.unit)
		if !okC || !okB {
			out = append(out, fmt.Sprintf("%s vs %s: no %s metric on both sides",
				cur.Name, base.Name, g.unit))
			continue
		}
		if bv <= 0 {
			out = append(out, fmt.Sprintf("%s: base %s %s is zero, gate meaningless",
				base.Name, g.unit, cur.Name))
			continue
		}
		if pct := (cv - bv) / bv * 100; pct > g.maxPct {
			out = append(out, fmt.Sprintf("%s: %g %s vs %g at %s (+%.1f%%, limit +%g%%)",
				cur.Name, cv, g.unit, bv, base.Name, pct, g.maxPct))
		}
	}
	return out
}

// loadDocument reads an earlier trajectory point.
func loadDocument(path string) (Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Document{}, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return Document{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return doc, nil
}

// checkRegressions compares cur against base, returning one message per
// gate-matching benchmark whose ns/op worsened by more than maxPct percent
// or whose allocs/op worsened by more than maxAllocPct percent (compared
// only when both sides carry the -benchmem column; a baseline of zero
// allocs flags any non-zero count, since no percentage of zero is
// meaningful). Benchmarks present on only one side are skipped: the gate
// guards known benches against slowdowns, it does not force the sets to
// match.
func checkRegressions(cur, base Document, gate *regexp.Regexp, maxPct, maxAllocPct float64) []string {
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var out []string
	for _, b := range cur.Benchmarks {
		if !gate.MatchString(b.Name) {
			continue
		}
		old, ok := baseBy[b.Name]
		if !ok {
			continue
		}
		if old.NsPerOp > 0 {
			pct := (b.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
			if pct > maxPct {
				out = append(out, fmt.Sprintf("%s: %.0f -> %.0f ns/op (+%.1f%%, limit +%g%%)",
					b.Name, old.NsPerOp, b.NsPerOp, pct, maxPct))
			}
		}
		if old.AllocsPerOp != nil && b.AllocsPerOp != nil {
			oa, ca := *old.AllocsPerOp, *b.AllocsPerOp
			switch {
			case oa == 0 && ca > 0:
				out = append(out, fmt.Sprintf("%s: 0 -> %g allocs/op (baseline was allocation-free)",
					b.Name, ca))
			case oa > 0 && (ca-oa)/oa*100 > maxAllocPct:
				out = append(out, fmt.Sprintf("%s: %g -> %g allocs/op (+%.1f%%, limit +%g%%)",
					b.Name, oa, ca, (ca-oa)/oa*100, maxAllocPct))
			}
		}
	}
	return out
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   100   123456 ns/op   789 B/op   12 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: trimProcs(fields[0]), Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = val
			seen = true
		case "B/op":
			v := val
			b.BytesPerOp = &v
		case "allocs/op":
			v := val
			b.AllocsPerOp = &v
		default:
			// Custom b.ReportMetric units, e.g. S6's "ns/node-step" or
			// S8's "dial-p99-µs".
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[fields[i+1]] = val
		}
	}
	return b, seen
}

// trimProcs drops the -GOMAXPROCS suffix from a benchmark name.
func trimProcs(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
