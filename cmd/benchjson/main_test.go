package main

import (
	"regexp"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkDiscoveryRoundInstant/grid/nodes=1024-8   138   8616368 ns/op   120 B/op   3 allocs/op")
	if !ok {
		t.Fatal("parseLine rejected a valid result line")
	}
	if b.Name != "BenchmarkDiscoveryRoundInstant/grid/nodes=1024" {
		t.Errorf("name = %q, GOMAXPROCS suffix not trimmed", b.Name)
	}
	if b.Iterations != 138 || b.NsPerOp != 8616368 {
		t.Errorf("iters/ns = %d/%g", b.Iterations, b.NsPerOp)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 120 || b.AllocsPerOp == nil || *b.AllocsPerOp != 3 {
		t.Errorf("benchmem fields not parsed: %+v", b)
	}
}

func TestParseLineCustomUnit(t *testing.T) {
	b, ok := parseLine("BenchmarkS6Metropolis/nodes=100000-8   1   187000000000 ns/op   1871 ns/node-step")
	if !ok {
		t.Fatal("parseLine rejected a line with a custom metric")
	}
	if got := b.Extra["ns/node-step"]; got != 1871 {
		t.Errorf("Extra[ns/node-step] = %g, want 1871", got)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tpeerhood\t1.2s",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"Benchmark only three",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

func TestCheckRegressions(t *testing.T) {
	base := Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 1000},
	}}
	cur := Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1200}, // +20%: within a 25% budget
		{Name: "BenchmarkB", NsPerOp: 1300}, // +30%: over budget
		{Name: "BenchmarkNew", NsPerOp: 99},
	}}

	got := checkRegressions(cur, base, regexp.MustCompile("."), 25)
	if len(got) != 1 {
		t.Fatalf("regressions = %v, want exactly the +30%% one", got)
	}
	if want := "BenchmarkB"; !regexp.MustCompile(want).MatchString(got[0]) {
		t.Errorf("regression message %q does not name %s", got[0], want)
	}

	// The gate regexp restricts which benches are compared at all.
	if got := checkRegressions(cur, base, regexp.MustCompile("^BenchmarkA$"), 25); len(got) != 0 {
		t.Errorf("gated run reported %v, want none", got)
	}

	// Tightening the budget flags the +20% too.
	if got := checkRegressions(cur, base, regexp.MustCompile("."), 10); len(got) != 2 {
		t.Errorf("10%% budget reported %v, want 2 regressions", got)
	}
}
