package main

import (
	"regexp"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkDiscoveryRoundInstant/grid/nodes=1024-8   138   8616368 ns/op   120 B/op   3 allocs/op")
	if !ok {
		t.Fatal("parseLine rejected a valid result line")
	}
	if b.Name != "BenchmarkDiscoveryRoundInstant/grid/nodes=1024" {
		t.Errorf("name = %q, GOMAXPROCS suffix not trimmed", b.Name)
	}
	if b.Iterations != 138 || b.NsPerOp != 8616368 {
		t.Errorf("iters/ns = %d/%g", b.Iterations, b.NsPerOp)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 120 || b.AllocsPerOp == nil || *b.AllocsPerOp != 3 {
		t.Errorf("benchmem fields not parsed: %+v", b)
	}
}

func TestParseLineCustomUnit(t *testing.T) {
	b, ok := parseLine("BenchmarkS6Metropolis/nodes=100000-8   1   187000000000 ns/op   1871 ns/node-step")
	if !ok {
		t.Fatal("parseLine rejected a line with a custom metric")
	}
	if got := b.Extra["ns/node-step"]; got != 1871 {
		t.Errorf("Extra[ns/node-step] = %g, want 1871", got)
	}
	b, ok = parseLine("BenchmarkS8RushHour-8   1   2534867425 ns/op   4565 conns/sec   1656 dial-p99-µs")
	if !ok {
		t.Fatal("parseLine rejected the S8 line")
	}
	if b.Extra["conns/sec"] != 4565 || b.Extra["dial-p99-µs"] != 1656 {
		t.Errorf("S8 extras = %v", b.Extra)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tpeerhood\t1.2s",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"Benchmark only three",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

func TestCheckRegressions(t *testing.T) {
	base := Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 1000},
	}}
	cur := Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1200}, // +20%: within a 25% budget
		{Name: "BenchmarkB", NsPerOp: 1300}, // +30%: over budget
		{Name: "BenchmarkNew", NsPerOp: 99},
	}}

	got := checkRegressions(cur, base, regexp.MustCompile("."), 25, 0)
	if len(got) != 1 {
		t.Fatalf("regressions = %v, want exactly the +30%% one", got)
	}
	if want := "BenchmarkB"; !regexp.MustCompile(want).MatchString(got[0]) {
		t.Errorf("regression message %q does not name %s", got[0], want)
	}

	// The gate regexp restricts which benches are compared at all.
	if got := checkRegressions(cur, base, regexp.MustCompile("^BenchmarkA$"), 25, 0); len(got) != 0 {
		t.Errorf("gated run reported %v, want none", got)
	}

	// Tightening the budget flags the +20% too.
	if got := checkRegressions(cur, base, regexp.MustCompile("."), 10, 0); len(got) != 2 {
		t.Errorf("10%% budget reported %v, want 2 regressions", got)
	}
}

func fp(v float64) *float64 { return &v }

func TestCheckRegressionsAllocs(t *testing.T) {
	base := Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkZero", NsPerOp: 100, AllocsPerOp: fp(0)},
		{Name: "BenchmarkTen", NsPerOp: 100, AllocsPerOp: fp(10)},
		{Name: "BenchmarkNoMem", NsPerOp: 100},
	}}
	cur := Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkZero", NsPerOp: 100, AllocsPerOp: fp(1)},  // was allocation-free
		{Name: "BenchmarkTen", NsPerOp: 100, AllocsPerOp: fp(11)},  // +10%
		{Name: "BenchmarkNoMem", NsPerOp: 100, AllocsPerOp: fp(5)}, // baseline lacks the column
	}}

	// Zero tolerance: the 0->1 and the +10% both fail; NoMem is skipped
	// because the baseline cannot be compared.
	got := checkRegressions(cur, base, regexp.MustCompile("."), 1000, 0)
	if len(got) != 2 {
		t.Fatalf("alloc regressions = %v, want 2", got)
	}
	for _, want := range []string{"BenchmarkZero", "BenchmarkTen"} {
		found := false
		for _, msg := range got {
			if regexp.MustCompile(want).MatchString(msg) {
				found = true
			}
		}
		if !found {
			t.Errorf("no message names %s in %v", want, got)
		}
	}

	// Loosening the allocation tolerance passes the +10% but never the
	// 0->1: any allocation on a previously allocation-free path fails.
	got = checkRegressions(cur, base, regexp.MustCompile("."), 1000, 15)
	if len(got) != 1 || !regexp.MustCompile("BenchmarkZero").MatchString(got[0]) {
		t.Fatalf("15%% alloc budget reported %v, want only BenchmarkZero", got)
	}
}

func TestParseAllocBudgets(t *testing.T) {
	budgets, err := parseAllocBudgets("StorageMerge$=0, EncoderEncode$=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(budgets) != 2 || budgets[0].max != 0 || budgets[1].max != 1 {
		t.Fatalf("budgets = %+v", budgets)
	}
	for _, bad := range []string{"", "noequals", "=5", "bad(regex=1", "Name=-1", "Name=x"} {
		if _, err := parseAllocBudgets(bad); err == nil {
			t.Errorf("parseAllocBudgets(%q) accepted", bad)
		}
	}
}

func TestCheckAllocBudgets(t *testing.T) {
	doc := Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkStorageMergeNeighborhood", AllocsPerOp: fp(0)},
		{Name: "BenchmarkEncoderEncode", AllocsPerOp: fp(2)},
		{Name: "BenchmarkNoMem"},
	}}
	mustBudgets := func(spec string) []allocBudget {
		t.Helper()
		b, err := parseAllocBudgets(spec)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Within budget.
	if got := checkAllocBudgets(doc, mustBudgets("StorageMergeNeighborhood$=0")); len(got) != 0 {
		t.Errorf("violations = %v, want none", got)
	}
	// Over budget.
	if got := checkAllocBudgets(doc, mustBudgets("EncoderEncode$=1")); len(got) != 1 {
		t.Errorf("violations = %v, want the EncoderEncode overrun", got)
	}
	// Matching a bench that was run without -benchmem is a violation.
	if got := checkAllocBudgets(doc, mustBudgets("NoMem$=0")); len(got) != 1 {
		t.Errorf("violations = %v, want the missing-benchmem report", got)
	}
	// A budget that matches nothing is a violation (typo protection).
	if got := checkAllocBudgets(doc, mustBudgets("DoesNotExist$=0")); len(got) != 1 {
		t.Errorf("violations = %v, want the unmatched-budget report", got)
	}
}

func TestCheckMemBudgets(t *testing.T) {
	doc := Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkS6Metropolis/nodes=1000000", BytesPerOp: fp(1800)},
		{Name: "BenchmarkDaemonHotPath", BytesPerOp: fp(4096)},
		{Name: "BenchmarkNoMem"},
	}}
	mustBudgets := func(spec string) []allocBudget {
		t.Helper()
		b, err := parseAllocBudgets(spec)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Within budget.
	if got := checkMemBudgets(doc, mustBudgets("S6Metropolis/nodes=1000000$=4000")); len(got) != 0 {
		t.Errorf("violations = %v, want none", got)
	}
	// Over budget.
	if got := checkMemBudgets(doc, mustBudgets("DaemonHotPath$=1024")); len(got) != 1 {
		t.Errorf("violations = %v, want the DaemonHotPath overrun", got)
	}
	// Matching a bench that was run without -benchmem is a violation.
	if got := checkMemBudgets(doc, mustBudgets("NoMem$=0")); len(got) != 1 {
		t.Errorf("violations = %v, want the missing-benchmem report", got)
	}
	// A budget that matches nothing is a violation (typo protection).
	if got := checkMemBudgets(doc, mustBudgets("DoesNotExist$=0")); len(got) != 1 {
		t.Errorf("violations = %v, want the unmatched-budget report", got)
	}
}

func TestParseFlatGates(t *testing.T) {
	gates, err := parseFlatGates("nodes=1000000$:nodes=100000$:ns/node-step:25, A$:B$:B/op:100")
	if err != nil {
		t.Fatal(err)
	}
	if len(gates) != 2 {
		t.Fatalf("got %d gates, want 2", len(gates))
	}
	if gates[0].unit != "ns/node-step" || gates[0].maxPct != 25 {
		t.Errorf("gate 0 = %+v", gates[0])
	}
	if !gates[1].cur.MatchString("BenchmarkA") || !gates[1].base.MatchString("BenchmarkB") {
		t.Errorf("gate 1 regexps wrong: %+v", gates[1])
	}
	for _, bad := range []string{"", "a:b:c", "a:b:c:d:e", "(:b:ns/op:25", "a:(:ns/op:25", "a:b::25", "a:b:ns/op:x", "a:b:ns/op:-5"} {
		if _, err := parseFlatGates(bad); err == nil {
			t.Errorf("parseFlatGates(%q) accepted", bad)
		}
	}
}

func TestCheckFlatGates(t *testing.T) {
	doc := Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkS6Metropolis/nodes=10000", NsPerOp: 100, BytesPerOp: fp(900),
			Extra: map[string]float64{"heap-B/node": 1600}},
		{Name: "BenchmarkS6Metropolis/nodes=100000", NsPerOp: 110,
			Extra: map[string]float64{"ns/node-step": 950}},
		{Name: "BenchmarkS6Metropolis/nodes=1000000", NsPerOp: 160,
			Extra: map[string]float64{"ns/node-step": 1100, "heap-B/node": 2900}},
	}}
	mustGates := func(spec string) []flatGate {
		t.Helper()
		g, err := parseFlatGates(spec)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	// Flat enough on a custom unit: 1100 vs 950 is +15.8%, inside 25%.
	if got := checkFlatGates(doc, mustGates("nodes=1000000$:nodes=100000$:ns/node-step:25")); len(got) != 0 {
		t.Errorf("violations = %v, want none", got)
	}
	// Over the limit: 160 vs 100 ns/op is +60%.
	if got := checkFlatGates(doc, mustGates("nodes=1000000$:nodes=10000$:ns/op:25")); len(got) != 1 {
		t.Errorf("violations = %v, want the ns/op blowup", got)
	}
	// Within a 2x (=+100%) heap gate: 2900 vs 1600 is +81%.
	if got := checkFlatGates(doc, mustGates("nodes=1000000$:nodes=10000$:heap-B/node:100")); len(got) != 0 {
		t.Errorf("violations = %v, want none", got)
	}
	// A missing benchmark must fail the gate, not silently pass.
	if got := checkFlatGates(doc, mustGates("nodes=10000000$:nodes=10000$:ns/op:25")); len(got) != 1 {
		t.Errorf("violations = %v, want the missing-bench report", got)
	}
	// A missing unit on either side must fail too.
	if got := checkFlatGates(doc, mustGates("nodes=1000000$:nodes=10000$:B/op:25")); len(got) != 1 {
		t.Errorf("violations = %v, want the missing-unit report", got)
	}
}
