package main

import (
	"regexp"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkDiscoveryRoundInstant/grid/nodes=1024-8   138   8616368 ns/op   120 B/op   3 allocs/op")
	if !ok {
		t.Fatal("parseLine rejected a valid result line")
	}
	if b.Name != "BenchmarkDiscoveryRoundInstant/grid/nodes=1024" {
		t.Errorf("name = %q, GOMAXPROCS suffix not trimmed", b.Name)
	}
	if b.Iterations != 138 || b.NsPerOp != 8616368 {
		t.Errorf("iters/ns = %d/%g", b.Iterations, b.NsPerOp)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 120 || b.AllocsPerOp == nil || *b.AllocsPerOp != 3 {
		t.Errorf("benchmem fields not parsed: %+v", b)
	}
}

func TestParseLineCustomUnit(t *testing.T) {
	b, ok := parseLine("BenchmarkS6Metropolis/nodes=100000-8   1   187000000000 ns/op   1871 ns/node-step")
	if !ok {
		t.Fatal("parseLine rejected a line with a custom metric")
	}
	if got := b.Extra["ns/node-step"]; got != 1871 {
		t.Errorf("Extra[ns/node-step] = %g, want 1871", got)
	}
	b, ok = parseLine("BenchmarkS8RushHour-8   1   2534867425 ns/op   4565 conns/sec   1656 dial-p99-µs")
	if !ok {
		t.Fatal("parseLine rejected the S8 line")
	}
	if b.Extra["conns/sec"] != 4565 || b.Extra["dial-p99-µs"] != 1656 {
		t.Errorf("S8 extras = %v", b.Extra)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tpeerhood\t1.2s",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"Benchmark only three",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

func TestCheckRegressions(t *testing.T) {
	base := Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 1000},
	}}
	cur := Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1200}, // +20%: within a 25% budget
		{Name: "BenchmarkB", NsPerOp: 1300}, // +30%: over budget
		{Name: "BenchmarkNew", NsPerOp: 99},
	}}

	got := checkRegressions(cur, base, regexp.MustCompile("."), 25, 0)
	if len(got) != 1 {
		t.Fatalf("regressions = %v, want exactly the +30%% one", got)
	}
	if want := "BenchmarkB"; !regexp.MustCompile(want).MatchString(got[0]) {
		t.Errorf("regression message %q does not name %s", got[0], want)
	}

	// The gate regexp restricts which benches are compared at all.
	if got := checkRegressions(cur, base, regexp.MustCompile("^BenchmarkA$"), 25, 0); len(got) != 0 {
		t.Errorf("gated run reported %v, want none", got)
	}

	// Tightening the budget flags the +20% too.
	if got := checkRegressions(cur, base, regexp.MustCompile("."), 10, 0); len(got) != 2 {
		t.Errorf("10%% budget reported %v, want 2 regressions", got)
	}
}

func fp(v float64) *float64 { return &v }

func TestCheckRegressionsAllocs(t *testing.T) {
	base := Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkZero", NsPerOp: 100, AllocsPerOp: fp(0)},
		{Name: "BenchmarkTen", NsPerOp: 100, AllocsPerOp: fp(10)},
		{Name: "BenchmarkNoMem", NsPerOp: 100},
	}}
	cur := Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkZero", NsPerOp: 100, AllocsPerOp: fp(1)},  // was allocation-free
		{Name: "BenchmarkTen", NsPerOp: 100, AllocsPerOp: fp(11)},  // +10%
		{Name: "BenchmarkNoMem", NsPerOp: 100, AllocsPerOp: fp(5)}, // baseline lacks the column
	}}

	// Zero tolerance: the 0->1 and the +10% both fail; NoMem is skipped
	// because the baseline cannot be compared.
	got := checkRegressions(cur, base, regexp.MustCompile("."), 1000, 0)
	if len(got) != 2 {
		t.Fatalf("alloc regressions = %v, want 2", got)
	}
	for _, want := range []string{"BenchmarkZero", "BenchmarkTen"} {
		found := false
		for _, msg := range got {
			if regexp.MustCompile(want).MatchString(msg) {
				found = true
			}
		}
		if !found {
			t.Errorf("no message names %s in %v", want, got)
		}
	}

	// Loosening the allocation tolerance passes the +10% but never the
	// 0->1: any allocation on a previously allocation-free path fails.
	got = checkRegressions(cur, base, regexp.MustCompile("."), 1000, 15)
	if len(got) != 1 || !regexp.MustCompile("BenchmarkZero").MatchString(got[0]) {
		t.Fatalf("15%% alloc budget reported %v, want only BenchmarkZero", got)
	}
}

func TestParseAllocBudgets(t *testing.T) {
	budgets, err := parseAllocBudgets("StorageMerge$=0, EncoderEncode$=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(budgets) != 2 || budgets[0].max != 0 || budgets[1].max != 1 {
		t.Fatalf("budgets = %+v", budgets)
	}
	for _, bad := range []string{"", "noequals", "=5", "bad(regex=1", "Name=-1", "Name=x"} {
		if _, err := parseAllocBudgets(bad); err == nil {
			t.Errorf("parseAllocBudgets(%q) accepted", bad)
		}
	}
}

func TestCheckAllocBudgets(t *testing.T) {
	doc := Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkStorageMergeNeighborhood", AllocsPerOp: fp(0)},
		{Name: "BenchmarkEncoderEncode", AllocsPerOp: fp(2)},
		{Name: "BenchmarkNoMem"},
	}}
	mustBudgets := func(spec string) []allocBudget {
		t.Helper()
		b, err := parseAllocBudgets(spec)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Within budget.
	if got := checkAllocBudgets(doc, mustBudgets("StorageMergeNeighborhood$=0")); len(got) != 0 {
		t.Errorf("violations = %v, want none", got)
	}
	// Over budget.
	if got := checkAllocBudgets(doc, mustBudgets("EncoderEncode$=1")); len(got) != 1 {
		t.Errorf("violations = %v, want the EncoderEncode overrun", got)
	}
	// Matching a bench that was run without -benchmem is a violation.
	if got := checkAllocBudgets(doc, mustBudgets("NoMem$=0")); len(got) != 1 {
		t.Errorf("violations = %v, want the missing-benchmem report", got)
	}
	// A budget that matches nothing is a violation (typo protection).
	if got := checkAllocBudgets(doc, mustBudgets("DoesNotExist$=0")); len(got) != 1 {
		t.Errorf("violations = %v, want the unmatched-budget report", got)
	}
}
