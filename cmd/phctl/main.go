// Command phctl inspects a running peerhoodd over the wire: it dials the
// daemon's information port (the same protocol PeerHood devices use to
// fetch each other's data, fig 3.7) and prints the device descriptor,
// registered services, neighbourhood routing table, and the storage digest
// driving delta neighbourhood sync (epoch, generation, entry count, table
// hash). The watch subcommand instead dials the library engine port,
// subscribes to the neighbourhood event stream (EVENT_SUBSCRIBE), and
// tails device/link/handover events to stdout until interrupted.
//
// Usage:
//
//	phctl -addr 127.0.0.1:7001 [device|services|neighborhood|devices|digest|all]
//	phctl -addr 127.0.0.1:7001 watch [event-type ...]
//	phctl -addr 127.0.0.1:7001 [-cells] stats [prefix]
//	phctl -addr 127.0.0.1:7001 cells
//	phctl -addr 127.0.0.1:7001 [-tail n] trace
//
// The stats subcommand fetches the daemon's telemetry registry snapshot
// (STATS_REQUEST) and prints one Prometheus-style series per line,
// optionally filtered to names starting with prefix. With -cells (or as
// the standalone cells subcommand) it additionally fetches the
// hierarchical neighbourhood view (a ScopeAggregate NEIGHBORHOOD_SYNC_
// REQUEST) and summarises the responder's per-cell aggregate digests:
// population, technology mix, best route quality, and cell hash, with the
// XOR check tying the cells back to the flat table digest. The trace subcommand
// subscribes to the daemon's span stream (TRACE_SUBSCRIBE), replays the
// last -tail recorded spans, and tails new ones as handover / sync /
// reconnect lifecycles complete.
//
// The devices subcommand fetches the neighbourhood through the versioned
// sync exchange (negotiating sibling advertisements) and renders it
// grouped by cross-interface device identity: one block per physical
// device, one row per radio interface with its technology.
//
// Event types for watch: device-appeared, device-lost, link-degrading,
// link-recovered, link-lost, handover-started, handover-completed,
// handover-failed, vertical-handover. No types means everything;
// vertical-handover lines (bearer-technology changes) are marked with ⇅.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"os"
	"sort"
	"strconv"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/events"
	"peerhood/internal/phproto"
)

func main() {
	addr := flag.String("addr", "", "daemon host:port (required)")
	timeout := flag.Duration("timeout", 5*time.Second, "dial/read timeout")
	tail := flag.Uint("tail", 32, "spans to replay before tailing (trace)")
	cellsFlag := flag.Bool("cells", false, "with stats: also summarise per-cell aggregate digests")
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "phctl: -addr is required")
		flag.Usage()
		os.Exit(2)
	}
	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}

	if what == "watch" {
		if err := watch(*addr, *timeout, flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	if what == "stats" {
		prefix := ""
		if flag.NArg() > 1 {
			prefix = flag.Arg(1)
		}
		if err := stats(*addr, *timeout, prefix); err != nil {
			log.Fatal(err)
		}
		if *cellsFlag {
			if err := cells(*addr, *timeout); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	if what == "cells" {
		if err := cells(*addr, *timeout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if what == "trace" {
		if err := trace(*addr, *timeout, uint32(*tail)); err != nil {
			log.Fatal(err)
		}
		return
	}

	conn, err := dialPort(*addr, device.PortDaemon, *timeout)
	if err != nil {
		log.Fatalf("dialing daemon: %v", err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(*timeout))

	if what == "device" || what == "all" {
		info, err := fetch[*phproto.DeviceInfo](conn, phproto.InfoDevice)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("device: %s\n  addr:     %v\n  mobility: %v\n  checksum: %d\n",
			info.Info.Name, info.Info.Addr, info.Info.Mobility, info.Info.Checksum)
	}
	if what == "services" || what == "all" {
		svcs, err := fetch[*phproto.ServiceList](conn, phproto.InfoServices)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("services (%d):\n", len(svcs.Services))
		for _, s := range svcs.Services {
			fmt.Printf("  %v\n", s)
		}
	}
	if what == "devices" {
		if err := showDevices(conn); err != nil {
			log.Fatal(err)
		}
		return
	}
	if what == "neighborhood" || what == "all" {
		nb, err := fetch[*phproto.Neighborhood](conn, phproto.InfoNeighborhood)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("neighbourhood (%d devices):\n", len(nb.Entries))
		fmt.Printf("  %-16s %-28s %5s  %-28s %7s\n", "NAME", "ADDR", "JUMPS", "BRIDGE", "QUALITY")
		for _, e := range nb.Entries {
			bridge := "-"
			if !e.Bridge.IsZero() {
				bridge = e.Bridge.String()
			}
			fmt.Printf("  %-16s %-28s %5d  %-28s %7d\n",
				e.Info.Name, e.Info.Addr, e.Jumps, bridge, e.QualitySum)
		}
	}
	if what == "digest" || what == "all" {
		dg, err := fetch[*phproto.DigestInfo](conn, phproto.InfoDigest)
		if err != nil {
			// Daemons predating delta sync hang up on InfoDigest; "all"
			// against one degrades instead of failing after the sections
			// that worked.
			if what == "all" {
				fmt.Printf("storage digest: not supported by this daemon (%v)\n", err)
				return
			}
			log.Fatal(err)
		}
		fmt.Printf("storage digest:\n")
		fmt.Printf("  generation: %d\n", dg.Gen)
		fmt.Printf("  epoch:      %016x\n", dg.Epoch)
		fmt.Printf("  entries:    %d\n", dg.Entries)
		fmt.Printf("  table hash: %016x\n", dg.Hash)
	}
}

// showDevices renders the responder's neighbourhood grouped by
// cross-interface device identity. It negotiates the sibling-carrying
// entry form through a first-contact versioned sync request; a legacy
// daemon (which cannot advertise identities) still answers it with a FULL
// table whose rows simply group as singletons.
func showDevices(conn net.Conn) error {
	if err := phproto.Write(conn, &phproto.NeighborhoodSyncRequest{Flags: phproto.SyncFlagSiblings}); err != nil {
		return fmt.Errorf("requesting sync: %w", err)
	}
	resp, err := phproto.ReadExpect[*phproto.NeighborhoodSync](conn)
	if err != nil {
		return fmt.Errorf("reading sync (legacy daemon? try 'neighborhood'): %w", err)
	}

	groups := make(map[device.ID][]phproto.NeighborEntry)
	for _, en := range resp.Entries {
		id := en.Info.Identity()
		groups[id] = append(groups[id], en)
	}
	ids := make([]device.ID, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	fmt.Printf("devices (%d identities, %d interfaces):\n", len(groups), len(resp.Entries))
	for _, id := range ids {
		ens := groups[id]
		sort.Slice(ens, func(i, j int) bool { return ens[i].Info.Addr.Less(ens[j].Info.Addr) })
		fmt.Printf("%s (%d interface(s))\n", ens[0].Info.Name, len(ens))
		fmt.Printf("  %-5s %-28s %5s  %-28s %7s %8s\n", "TECH", "ADDR", "JUMPS", "BRIDGE", "QUALITY", "MOBILITY")
		for _, en := range ens {
			bridge := "-"
			if !en.Bridge.IsZero() {
				bridge = en.Bridge.String()
			}
			fmt.Printf("  %-5s %-28s %5d  %-28s %7d %8s\n",
				en.Info.Addr.Tech, en.Info.Addr, en.Jumps, bridge, en.QualitySum, en.Info.Mobility)
		}
	}
	return nil
}

// watch subscribes to the daemon's neighbourhood event stream on the
// library engine port and tails events to stdout. typeNames filters the
// subscription; empty means everything. It first asks for span-stamped
// events (EventSubFlagSpans); a legacy daemon rejects the flagged
// subscribe's trailing byte and hangs up, so on a failed handshake it
// redials and re-subscribes flagless.
func watch(addr string, timeout time.Duration, typeNames []string) error {
	mask, err := maskFor(typeNames)
	if err != nil {
		return err
	}
	conn, err := subscribeEvents(addr, timeout, uint32(mask), phproto.EventSubFlagSpans)
	if err != nil {
		legacy, lerr := subscribeEvents(addr, timeout, uint32(mask), 0)
		if lerr != nil {
			return fmt.Errorf("subscribing: %w", err)
		}
		fmt.Fprintln(os.Stderr, "daemon predates trace spans; watching without span IDs")
		conn = legacy
	}
	defer conn.Close()

	fmt.Fprintf(os.Stderr, "watching %s (mask %#x); ctrl-c to stop\n", addr, uint32(mask))
	for {
		ev, err := phproto.ReadExpect[*phproto.EventNotice](conn)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("event stream: %w", err)
		}
		ts := time.Unix(0, ev.UnixNanos).Format("2006-01-02 15:04:05.000")
		// Bearer changes are the events an adaptive application reacts to;
		// mark them so they stand out of the stream.
		marker := "  "
		if events.Type(ev.Type) == events.VerticalHandover {
			marker = "⇅ "
		}
		line := fmt.Sprintf("%s%s #%-6d %-19s %v", marker, ts, ev.Seq, events.Type(ev.Type), ev.Addr)
		if ev.Quality >= 0 {
			line += fmt.Sprintf(" q=%d", ev.Quality)
		}
		if ev.TimeToThreshold > 0 {
			line += fmt.Sprintf(" ttt=%s", ev.TimeToThreshold)
		}
		if ev.Span != 0 {
			line += fmt.Sprintf(" span=%016x", ev.Span)
		}
		if ev.Detail != "" {
			line += " " + ev.Detail
		}
		fmt.Println(line)
	}
}

// subscribeEvents dials the engine port and completes one EVENT_SUBSCRIBE
// handshake, returning the connection with deadlines cleared for tailing.
func subscribeEvents(addr string, timeout time.Duration, mask uint32, flags uint8) (net.Conn, error) {
	conn, err := dialPort(addr, device.PortEngine, timeout)
	if err != nil {
		return nil, fmt.Errorf("dialing engine port: %w", err)
	}
	// The handshake is bounded; the tail itself is not.
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if err := phproto.Write(conn, &phproto.EventSubscribe{Mask: mask, Flags: flags}); err != nil {
		_ = conn.Close()
		return nil, err
	}
	ack, err := phproto.ReadExpect[*phproto.Ack](conn)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("awaiting subscribe ack: %w", err)
	}
	if !ack.OK {
		_ = conn.Close()
		return nil, fmt.Errorf("subscription refused: %s", ack.Reason)
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, nil
}

// stats fetches one telemetry snapshot from the daemon information port and
// prints it in Prometheus text style, one series per line.
func stats(addr string, timeout time.Duration, prefix string) error {
	conn, err := dialPort(addr, device.PortDaemon, timeout)
	if err != nil {
		return fmt.Errorf("dialing daemon: %w", err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))

	if err := phproto.Write(conn, &phproto.StatsRequest{Prefix: prefix}); err != nil {
		return fmt.Errorf("requesting stats: %w", err)
	}
	st, err := phproto.ReadExpect[*phproto.Stats](conn)
	if err != nil {
		// A legacy daemon closes the connection on the unknown command.
		return fmt.Errorf("reading stats (daemon predates telemetry?): %w", err)
	}
	fmt.Printf("# %s at %s: %d series\n",
		addr, time.Unix(0, st.UnixNanos).Format(time.RFC3339Nano), len(st.Entries))
	for _, en := range st.Entries {
		fmt.Printf("%s %s\n", en.Name, formatStat(math.Float64frombits(en.Value)))
	}
	return nil
}

// formatStat renders counters as integers and everything else in the
// shortest float form, matching Prometheus text conventions.
// cells fetches the hierarchical neighbourhood view over the wire — the
// same ScopeAggregate exchange hierarchical discoverers open with — and
// renders one line per occupied aggregation cell.
func cells(addr string, timeout time.Duration) error {
	conn, err := dialPort(addr, device.PortDaemon, timeout)
	if err != nil {
		return fmt.Errorf("dialing daemon: %w", err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if err := phproto.Write(conn, &phproto.NeighborhoodSyncRequest{
		Flags: phproto.SyncFlagSiblings,
		Scope: phproto.ScopeAggregate,
	}); err != nil {
		return fmt.Errorf("requesting aggregate view: %w", err)
	}
	agg, err := phproto.ReadExpect[*phproto.NeighborhoodAggregate](conn)
	if err != nil {
		return fmt.Errorf("reading aggregate view (daemon predates hierarchical sync?): %w", err)
	}
	fmt.Printf("aggregate view (%d cells of %d, %d entries, gen %d):\n",
		len(agg.Cells), phproto.NumAggCells, agg.DigestCount, agg.Gen)
	fmt.Printf("  %4s %7s %-20s %6s  %-16s\n", "CELL", "COUNT", "TECHS", "BEST", "HASH")
	var hash uint64
	for _, cs := range agg.Cells {
		techs := ""
		for _, tech := range device.Techs() {
			if cs.TechMask&(1<<uint8(tech)) == 0 {
				continue
			}
			if techs != "" {
				techs += ","
			}
			techs += tech.String()
		}
		hash ^= cs.Hash
		fmt.Printf("  %4d %7d %-20s %6d  %016x\n", cs.Cell, cs.Count, techs, cs.BestQuality, cs.Hash)
	}
	check := "OK"
	if hash != agg.DigestHash {
		check = fmt.Sprintf("MISMATCH (cells %016x)", hash)
	}
	fmt.Printf("  table hash: %016x  cell XOR check: %s\n", agg.DigestHash, check)
	return nil
}

func formatStat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// trace subscribes to the daemon's span stream on the engine port, replays
// the last tail recorded spans, then tails live spans until interrupted.
func trace(addr string, timeout time.Duration, tail uint32) error {
	conn, err := dialPort(addr, device.PortEngine, timeout)
	if err != nil {
		return fmt.Errorf("dialing engine port: %w", err)
	}
	defer conn.Close()

	_ = conn.SetDeadline(time.Now().Add(timeout))
	if err := phproto.Write(conn, &phproto.TraceSubscribe{Tail: tail}); err != nil {
		return fmt.Errorf("subscribing: %w", err)
	}
	ack, err := phproto.ReadExpect[*phproto.Ack](conn)
	if err != nil {
		return fmt.Errorf("awaiting trace ack (daemon predates telemetry?): %w", err)
	}
	if !ack.OK {
		return fmt.Errorf("trace subscription refused: %s", ack.Reason)
	}
	_ = conn.SetDeadline(time.Time{})

	fmt.Fprintf(os.Stderr, "tracing %s (replaying up to %d spans); ctrl-c to stop\n", addr, tail)
	for {
		sp, err := phproto.ReadExpect[*phproto.TraceSpan](conn)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("span stream: %w", err)
		}
		start := time.Unix(0, sp.StartUnixNanos)
		parent := "root"
		if sp.Parent != 0 {
			parent = fmt.Sprintf("%016x", sp.Parent)
		}
		line := fmt.Sprintf("%s %016x<-%s %-18s %s dur=%s",
			start.Format("2006-01-02 15:04:05.000"), sp.ID, parent, sp.Name, sp.Addr,
			time.Duration(sp.EndUnixNanos-sp.StartUnixNanos))
		if sp.Detail != "" {
			line += " " + sp.Detail
		}
		fmt.Println(line)
	}
}

// maskFor resolves event-type names to a subscription mask.
func maskFor(names []string) (events.Mask, error) {
	if len(names) == 0 {
		return 0, nil
	}
	byName := make(map[string]events.Type)
	for t := events.DeviceAppeared; t.Valid(); t++ {
		byName[t.String()] = t
	}
	var types []events.Type
	for _, n := range names {
		t, ok := byName[n]
		if !ok {
			return 0, fmt.Errorf("unknown event type %q (have %v)", n, keys(byName))
		}
		types = append(types, t)
	}
	return events.MaskOf(types...), nil
}

func keys(m map[string]events.Type) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// dialPort opens a TCP connection to the daemon process and sends the
// tcpnet port preamble selecting a logical port (daemon information port
// or library engine port).
func dialPort(addr string, port uint16, timeout time.Duration) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	var preamble [2]byte
	binary.BigEndian.PutUint16(preamble[:], port)
	if _, err := c.Write(preamble[:]); err != nil {
		_ = c.Close()
		return nil, err
	}
	var ok [1]byte
	if _, err := io.ReadFull(c, ok[:]); err != nil {
		_ = c.Close()
		return nil, err
	}
	if ok[0] != 1 {
		_ = c.Close()
		return nil, fmt.Errorf("port %d refused (is %s a peerhoodd?)", port, addr)
	}
	return c, nil
}

// fetch sends one InfoRequest and decodes the typed response.
func fetch[T phproto.Message](conn net.Conn, kind phproto.InfoKind) (T, error) {
	var zero T
	if err := phproto.Write(conn, &phproto.InfoRequest{Kind: kind}); err != nil {
		return zero, fmt.Errorf("requesting %v: %w", kind, err)
	}
	msg, err := phproto.ReadExpect[T](conn)
	if err != nil {
		return zero, fmt.Errorf("reading %v: %w", kind, err)
	}
	return msg, nil
}
