// Command phctl inspects a running peerhoodd over the wire: it dials the
// daemon's information port (the same protocol PeerHood devices use to
// fetch each other's data, fig 3.7) and prints the device descriptor,
// registered services, neighbourhood routing table, and the storage digest
// driving delta neighbourhood sync (epoch, generation, entry count, table
// hash).
//
// Usage:
//
//	phctl -addr 127.0.0.1:7001 [device|services|neighborhood|digest|all]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/phproto"
)

func main() {
	addr := flag.String("addr", "", "daemon host:port (required)")
	timeout := flag.Duration("timeout", 5*time.Second, "dial/read timeout")
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "phctl: -addr is required")
		flag.Usage()
		os.Exit(2)
	}
	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}

	conn, err := dialDaemonPort(*addr, *timeout)
	if err != nil {
		log.Fatalf("dialing daemon: %v", err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(*timeout))

	if what == "device" || what == "all" {
		info, err := fetch[*phproto.DeviceInfo](conn, phproto.InfoDevice)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("device: %s\n  addr:     %v\n  mobility: %v\n  checksum: %d\n",
			info.Info.Name, info.Info.Addr, info.Info.Mobility, info.Info.Checksum)
	}
	if what == "services" || what == "all" {
		svcs, err := fetch[*phproto.ServiceList](conn, phproto.InfoServices)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("services (%d):\n", len(svcs.Services))
		for _, s := range svcs.Services {
			fmt.Printf("  %v\n", s)
		}
	}
	if what == "neighborhood" || what == "all" {
		nb, err := fetch[*phproto.Neighborhood](conn, phproto.InfoNeighborhood)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("neighbourhood (%d devices):\n", len(nb.Entries))
		fmt.Printf("  %-16s %-28s %5s  %-28s %7s\n", "NAME", "ADDR", "JUMPS", "BRIDGE", "QUALITY")
		for _, e := range nb.Entries {
			bridge := "-"
			if !e.Bridge.IsZero() {
				bridge = e.Bridge.String()
			}
			fmt.Printf("  %-16s %-28s %5d  %-28s %7d\n",
				e.Info.Name, e.Info.Addr, e.Jumps, bridge, e.QualitySum)
		}
	}
	if what == "digest" || what == "all" {
		dg, err := fetch[*phproto.DigestInfo](conn, phproto.InfoDigest)
		if err != nil {
			// Daemons predating delta sync hang up on InfoDigest; "all"
			// against one degrades instead of failing after the sections
			// that worked.
			if what == "all" {
				fmt.Printf("storage digest: not supported by this daemon (%v)\n", err)
				return
			}
			log.Fatal(err)
		}
		fmt.Printf("storage digest:\n")
		fmt.Printf("  generation: %d\n", dg.Gen)
		fmt.Printf("  epoch:      %016x\n", dg.Epoch)
		fmt.Printf("  entries:    %d\n", dg.Entries)
		fmt.Printf("  table hash: %016x\n", dg.Hash)
	}
}

// dialDaemonPort opens a TCP connection to the daemon and sends the
// tcpnet port preamble selecting the daemon information port.
func dialDaemonPort(addr string, timeout time.Duration) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	var preamble [2]byte
	binary.BigEndian.PutUint16(preamble[:], device.PortDaemon)
	if _, err := c.Write(preamble[:]); err != nil {
		_ = c.Close()
		return nil, err
	}
	var ok [1]byte
	if _, err := io.ReadFull(c, ok[:]); err != nil {
		_ = c.Close()
		return nil, err
	}
	if ok[0] != 1 {
		_ = c.Close()
		return nil, fmt.Errorf("daemon port refused (is %s a peerhoodd?)", addr)
	}
	return c, nil
}

// fetch sends one InfoRequest and decodes the typed response.
func fetch[T phproto.Message](conn net.Conn, kind phproto.InfoKind) (T, error) {
	var zero T
	if err := phproto.Write(conn, &phproto.InfoRequest{Kind: kind}); err != nil {
		return zero, fmt.Errorf("requesting %v: %w", kind, err)
	}
	msg, err := phproto.ReadExpect[T](conn)
	if err != nil {
		return zero, fmt.Errorf("reading %v: %w", kind, err)
	}
	return msg, nil
}
