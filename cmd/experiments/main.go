// Command experiments regenerates the thesis' evaluation tables and
// figures on the simulated substrate. Run with no arguments for the full
// suite, or name experiment IDs (see -list).
//
// Usage:
//
//	experiments [-seed N] [-scale N] [-quick] [-v] [ID ...]
//	experiments -list
//	experiments -cpuprofile cpu.pprof -memprofile mem.pprof S8
//
// The profile flags wrap whatever scenarios run: -cpuprofile records CPU
// samples across all of them, -memprofile snapshots the live heap after
// they finish (with a GC first, so the snapshot shows retained memory,
// not garbage). Inspect either with `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"peerhood/internal/experiments"
)

func main() {
	var (
		seed    = flag.Int64("seed", 42, "random seed (echoed for reproducibility)")
		scale   = flag.Int("scale", 1000, "time compression: simulated seconds per wall second")
		quick   = flag.Bool("quick", false, "reduced trial counts for a fast smoke run")
		verb    = flag.Bool("v", false, "log per-trial progress")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprof = flag.String("memprofile", "", "write a heap profile after the run to this file")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-6s %s\n", id, title)
		}
		return
	}

	stopCPU := func() {}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}
	}

	var log io.Writer = io.Discard
	if *verb {
		log = os.Stderr
	}
	cfg := experiments.Config{Seed: *seed, TimeScale: *scale, Quick: *quick, Log: log}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	exit := 0
	for _, id := range ids {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			exit = 1
			continue
		}
		fmt.Println(res)
	}

	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // profile retained memory, not collectable garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
			os.Exit(1)
		}
		_ = f.Close()
	}
	stopCPU() // flush before os.Exit, which skips defers
	os.Exit(exit)
}
