// Command experiments regenerates the thesis' evaluation tables and
// figures on the simulated substrate. Run with no arguments for the full
// suite, or name experiment IDs (see -list).
//
// Usage:
//
//	experiments [-seed N] [-scale N] [-quick] [-v] [ID ...]
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"peerhood/internal/experiments"
)

func main() {
	var (
		seed  = flag.Int64("seed", 42, "random seed (echoed for reproducibility)")
		scale = flag.Int("scale", 1000, "time compression: simulated seconds per wall second")
		quick = flag.Bool("quick", false, "reduced trial counts for a fast smoke run")
		verb  = flag.Bool("v", false, "log per-trial progress")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-6s %s\n", id, title)
		}
		return
	}

	var log io.Writer = io.Discard
	if *verb {
		log = os.Stderr
	}
	cfg := experiments.Config{Seed: *seed, TimeScale: *scale, Quick: *quick, Log: log}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	exit := 0
	for _, id := range ids {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			exit = 1
			continue
		}
		fmt.Println(res)
	}
	os.Exit(exit)
}
