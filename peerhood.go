// Package peerhood is a Go implementation of the PeerHood mobile
// peer-to-peer middleware as extended by "Addressing mobility issues in
// mobile environment" (Ji Zhang, 2008): total-environment-aware dynamic
// device discovery, multi-hop bridge interconnection, and soft handover
// for task migration in changing wireless environments.
//
// A Node bundles the thesis' daemon (discovery + device storage +
// information responder), library (connections + engine), hidden bridge
// service, and handover support. Nodes live either in a simulated wireless
// world (NewWorld/World.NewNode — the form used by the examples,
// experiments, and tests) or on a real IP network (internal/tcpnet via
// cmd/peerhoodd).
//
// Quickstart:
//
//	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: 1})
//	defer w.Close()
//	server, _ := w.NewNode(peerhood.NodeConfig{Name: "pc", Position: peerhood.Pt(3, 0)})
//	phone, _ := w.NewNode(peerhood.NodeConfig{Name: "phone", Position: peerhood.Pt(0, 0), Mobility: peerhood.Dynamic})
//	server.RegisterService("echo", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) { ... })
//	w.RunDiscoveryRounds(2)
//	conn, _ := phone.Connect(server.Addr(), "echo")
package peerhood

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"peerhood/internal/bridge"
	"peerhood/internal/clock"
	"peerhood/internal/daemon"
	"peerhood/internal/device"
	"peerhood/internal/discovery"
	"peerhood/internal/events"
	"peerhood/internal/faultplane"
	"peerhood/internal/geo"
	"peerhood/internal/handover"
	"peerhood/internal/library"
	"peerhood/internal/linkmon"
	"peerhood/internal/mobility"
	"peerhood/internal/plugin"
	"peerhood/internal/simnet"
	"peerhood/internal/storage"
	"peerhood/internal/telemetry"
)

// Re-exported core types. The aliases keep one set of types across the
// public API and the internal packages.
type (
	// Addr identifies one radio interface (technology + MAC).
	Addr = device.Addr
	// Tech is a network technology.
	Tech = device.Tech
	// Mobility is a device mobility class (§3.4.3).
	Mobility = device.Mobility
	// ServiceInfo describes a registered service.
	ServiceInfo = device.ServiceInfo
	// DeviceInfo is a device descriptor.
	DeviceInfo = device.Info
	// Entry is one row of a node's device storage (descriptor + routes).
	Entry = storage.Entry
	// Route is one way to reach a device (direct or via a bridge).
	Route = storage.Route
	// ServiceProvider pairs a device with one of its services.
	ServiceProvider = storage.ServiceProvider
	// Connection is a virtual connection whose transport survives
	// handovers.
	Connection = library.VirtualConnection
	// ConnectionMeta describes an incoming connection to a handler.
	ConnectionMeta = library.ConnectionMeta
	// Handler consumes incoming service connections.
	Handler = library.Handler
	// HandoverThread monitors one connection and performs handovers.
	HandoverThread = handover.Thread
	// HandoverEvent is a handover lifecycle notification.
	HandoverEvent = handover.Event
	// Point is a position in the simulated world, in metres.
	Point = geo.Point
	// MobilityModel moves a simulated device over time.
	MobilityModel = mobility.Model
	// Event is one neighbourhood bus notification (device appeared/lost,
	// link degrading/recovered/lost, handover lifecycle).
	Event = events.Event
	// EventType identifies an Event kind.
	EventType = events.Type
	// EventMask filters event types in Events subscriptions.
	EventMask = events.Mask
	// EventSubscription is a live neighbourhood event feed.
	EventSubscription = events.Subscription
	// LinkState is one monitored link's trend state (level, slope,
	// classification, predicted time-to-threshold).
	LinkState = linkmon.State
	// Impairment is a per-link-direction failure-weather profile: silent
	// frame loss, delivery jitter, Gilbert–Elliott burst outages, and a
	// measured-quality penalty (fault injection).
	Impairment = simnet.Impairment
	// FaultScript is an ordered, clock-scheduled list of fault events
	// (partitions, blackouts, impairments, crash/restart churn) plus
	// assertions — declarative failure weather for a world.
	FaultScript = faultplane.Script
	// FaultEvent schedules one fault action at a time offset.
	FaultEvent = faultplane.Event
	// Rect is an axis-aligned region, used by blackout events.
	Rect = geo.Rect

	// The fault actions, so a whole script can be written against this
	// package alone (internal/faultplane is unreachable from outside the
	// module).
	FaultPartition   = faultplane.Partition
	FaultBlackout    = faultplane.Blackout
	FaultImpair      = faultplane.Impair
	FaultClearImpair = faultplane.ClearImpair
	FaultHeal        = faultplane.Heal
	FaultCrash       = faultplane.Crash
	FaultRestart     = faultplane.Restart
	FaultCheck       = faultplane.Check
)

// Re-exported constants.
const (
	// Bluetooth, WLAN and GPRS are the technologies PeerHood supports.
	Bluetooth = device.TechBluetooth
	WLAN      = device.TechWLAN
	GPRS      = device.TechGPRS

	// Static, Hybrid and Dynamic are the mobility classes with the
	// thesis' comparison weights {0, 1, 3}.
	Static  = device.Static
	Hybrid  = device.Hybrid
	Dynamic = device.Dynamic

	// QualityThreshold is the 230 link-quality threshold used for route
	// acceptance and handover triggering throughout the thesis.
	QualityThreshold = simnet.QualityThreshold

	// Neighbourhood event types (see Events / phctl watch).
	EventDeviceAppeared    = events.DeviceAppeared
	EventDeviceLost        = events.DeviceLost
	EventLinkDegrading     = events.LinkDegrading
	EventLinkRecovered     = events.LinkRecovered
	EventLinkLost          = events.LinkLost
	EventHandoverStarted   = events.HandoverStarted
	EventHandoverCompleted = events.HandoverCompleted
	EventHandoverFailed    = events.HandoverFailed
	EventVerticalHandover  = events.VerticalHandover

	// Handover selection policies (NodeConfig.HandoverPolicy,
	// HandoverConfig.Policy).
	PolicyStrongestLink  = handover.PolicyStrongestLink
	PolicyBandwidthFirst = handover.PolicyBandwidthFirst
	PolicyCostFirst      = handover.PolicyCostFirst
)

// MaskOf builds an EventMask selecting exactly the given event types; the
// zero mask selects everything.
func MaskOf(types ...EventType) EventMask { return events.MaskOf(types...) }

// Pt is shorthand for a Point.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// Walk returns a mobility model walking between two points at the given
// speed in m/s (1.4 approximates the thesis' corridor walk).
func Walk(from, to Point, speed float64) MobilityModel {
	return mobility.Walk(from, to, speed)
}

// StayAt returns a static mobility model.
func StayAt(p Point) MobilityModel { return mobility.Static{At: p} }

// WorldConfig parametrises a simulated world.
type WorldConfig struct {
	// Seed drives all randomness; experiments print it for
	// reproducibility.
	Seed int64
	// TimeScale compresses simulated time: 1000 means one simulated
	// second passes per wall millisecond. 0 means real time; 1 is real
	// time too. Deterministic tests use Instant instead.
	TimeScale int
	// Instant removes all latencies, faults, and quality noise — the
	// deterministic mode for protocol-state assertions.
	Instant bool
	// LinkCheckInterval is how often the world breaks out-of-coverage
	// links; 0 disables the background checker (call CheckLinks
	// manually).
	LinkCheckInterval time.Duration
	// LinearScan disables the spatial grid index and restores the
	// original full-scan neighbour lookup — the reference behaviour for
	// equivalence tests and A/B benchmarks.
	LinearScan bool
	// Clock, if set, drives the world directly and overrides TimeScale.
	// Scripted fault scenarios pass clock.NewManual() here so the whole
	// run — including the fault plane's schedule — replays
	// bit-identically from the seed.
	Clock clock.Clock
}

// World is a simulated wireless environment holding PeerHood nodes.
type World struct {
	sim *simnet.World
	clk clock.Clock
	reg *telemetry.Registry

	mu    sync.Mutex
	nodes []*Node
	fault *faultplane.Plane
}

// NewWorld creates a simulated world.
func NewWorld(cfg WorldConfig) *World {
	var clk clock.Clock
	switch {
	case cfg.Clock != nil:
		clk = cfg.Clock
	case cfg.TimeScale > 1:
		clk = clock.Scaled(cfg.TimeScale)
	default:
		clk = clock.Real()
	}
	var opts []simnet.Option
	if cfg.Instant {
		opts = append(opts, simnet.WithQualityNoise(0))
		for _, t := range device.Techs() {
			opts = append(opts, simnet.WithParams(t, simnet.DefaultParams(t).Instant()))
		}
	}
	if cfg.LinearScan {
		opts = append(opts, simnet.WithLinearScan())
	}
	w := &World{sim: simnet.NewWorld(clk, cfg.Seed, opts...), clk: clk, reg: telemetry.NewRegistry()}
	w.sim.Instrument(w.reg)
	if cfg.LinkCheckInterval > 0 {
		w.sim.StartAutoCheck(cfg.LinkCheckInterval)
	}
	return w
}

// Registry returns the world's telemetry registry: the radio substrate's
// frame/dial/link counters, aggregated across every node (per-daemon
// registries live on each node's Daemon). Scenario reports read it
// through the experiments telemetry adapter.
func (w *World) Registry() *telemetry.Registry { return w.reg }

// Sim exposes the underlying simulator for advanced scenarios (fault
// injection, parameter overrides in experiments).
func (w *World) Sim() *simnet.World { return w.sim }

// Fault returns the world's fault-injection plane, creating it (and
// installing its link filter) on first use. Load a FaultScript on it to
// schedule partitions, regional blackouts, link impairments, and node
// crash/restart churn; crash and restart events resolve node names against
// this world's nodes.
func (w *World) Fault() *faultplane.Plane {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fault == nil {
		p, err := faultplane.New(faultplane.Config{
			World: w.sim,
			Clock: w.clk,
			Resolve: func(name string) (faultplane.NodeHandle, bool) {
				n, ok := w.findNode(name)
				return n, ok
			},
		})
		if err != nil {
			// Unreachable: the world is always non-nil here.
			panic(err)
		}
		w.fault = p
	}
	return w.fault
}

// findNode returns the named node.
func (w *World) findNode(name string) (*Node, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, n := range w.nodes {
		if n.Name() == name {
			return n, true
		}
	}
	return nil, false
}

// Clock returns the world's clock.
func (w *World) Clock() clock.Clock { return w.clk }

// CheckLinks breaks links whose endpoints left mutual coverage.
func (w *World) CheckLinks() int { return w.sim.CheckLinks() }

// GridStats snapshots the world's per-technology spatial radio index
// (occupancy, refresh counts) — the structure that makes neighbour lookup
// O(cell occupancy) instead of O(world size).
func (w *World) GridStats() []simnet.GridStats { return w.sim.GridStats() }

// RunDiscoveryRounds drives n synchronous discovery rounds on every node
// in creation order; n rounds propagate awareness n jumps (fig 3.10).
func (w *World) RunDiscoveryRounds(n int) {
	w.mu.Lock()
	nodes := append([]*Node(nil), w.nodes...)
	w.mu.Unlock()
	for i := 0; i < n; i++ {
		for _, node := range nodes {
			node.RunDiscoveryRound()
		}
	}
}

// Close stops every node and tears the world down.
func (w *World) Close() error {
	w.mu.Lock()
	nodes := append([]*Node(nil), w.nodes...)
	w.nodes = nil
	w.mu.Unlock()
	for _, n := range nodes {
		n.Stop()
	}
	return w.sim.Close()
}

// NodeConfig parametrises one PeerHood node.
type NodeConfig struct {
	// Name is the device name (required, unique per world).
	Name string
	// Mobility is the advertised mobility class.
	Mobility Mobility
	// Position places a non-moving device; ignored if Model is set.
	Position Point
	// Model moves the device; nil means stay at Position.
	Model MobilityModel
	// Techs lists the radios to attach; nil means Bluetooth only.
	Techs []Tech
	// DisableBridge turns the hidden bridge service off (§4's
	// battery-saving option).
	DisableBridge bool
	// BridgeMaxPairs caps simultaneous relays (default 16).
	BridgeMaxPairs int
	// AutoDiscover starts the background discovery loops; leave false to
	// drive rounds manually (deterministic runs).
	AutoDiscover bool
	// LegacyDiscovery uses the pre-thesis one-level neighbourhood fetch
	// (baseline F3.3).
	LegacyDiscovery bool
	// FullSyncOnly disables the versioned delta neighbourhood exchange on
	// this node's fetches, re-transmitting the peer's whole table every
	// round (baseline for experiment S2's delta-vs-full comparison).
	FullSyncOnly bool
	// ServiceCheckInterval is the fig 3.12 re-fetch interval; zero
	// fetches every round.
	ServiceCheckInterval time.Duration
	// DialRetries overrides connection-fault retries (default 2;
	// negative disables retries).
	DialRetries int
	// SwapWait overrides how long reads/writes wait for a handover.
	SwapWait time.Duration
	// QualityFirst swaps route selection from mobility-first to
	// quality-first (ablation A1).
	QualityFirst bool
	// LinkHorizon is the link monitor's degradation-prediction horizon
	// (0 = linkmon default, 10 s).
	LinkHorizon time.Duration
	// LinkWindow is the link monitor's trend window in samples (0 =
	// linkmon default, 8); larger windows average out more quality noise.
	LinkWindow int
	// MaxMissedLoops is how many discovery rounds a stored device may go
	// unseen before it ages out (0 = storage default, 2). Fault-heavy
	// scenarios raise it so short blackouts do not wipe whole tables.
	MaxMissedLoops int
	// HandoverPolicy names the default candidate-selection policy for
	// handover threads attached to this node's connections:
	// PolicyStrongestLink (default), PolicyBandwidthFirst, or
	// PolicyCostFirst. HandoverConfig.Policy overrides it per thread.
	HandoverPolicy string
	// DisableIdentity makes the node behave like a pre-identity peer: no
	// sibling-interface advertisement, no identity-capable fetching, legacy
	// wire forms served — the interop baseline for vertical handover.
	DisableIdentity bool
}

// Node is one PeerHood device: daemon + library + bridge, ready to
// register services and connect. The daemon/library/bridge stack can be
// torn down and rebuilt by Crash/Restart (fault-plane churn) while the
// simulated device and its radios stay in the world.
type Node struct {
	world *World
	dev   *simnet.Device
	cfg   NodeConfig
	techs []Tech

	mu      sync.Mutex
	daemon  *daemon.Daemon
	lib     *library.Library
	bridge  *bridge.Service
	threads []*handover.Thread
	crashed bool
	stopped bool
}

// NewNode creates and starts a node in the world.
func (w *World) NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" {
		return nil, errors.New("peerhood: NodeConfig.Name is required")
	}
	techs := cfg.Techs
	if len(techs) == 0 {
		techs = []Tech{Bluetooth}
	}
	model := cfg.Model
	if model == nil {
		model = mobility.Static{At: cfg.Position}
	}

	dev, err := w.sim.AddDevice(cfg.Name, model)
	if err != nil {
		return nil, err
	}
	for _, t := range techs {
		if _, err := dev.AddRadio(t); err != nil {
			return nil, err
		}
	}

	n := &Node{world: w, dev: dev, cfg: cfg, techs: techs}
	if err := n.start(); err != nil {
		return nil, err
	}

	w.mu.Lock()
	w.nodes = append(w.nodes, n)
	w.mu.Unlock()
	return n, nil
}

// start builds and starts the node's daemon, library, and bridge on the
// device's existing radios. NewNode calls it once; Restart calls it again
// after a Crash, which is why a fresh daemon (and so a fresh storage
// epoch) is built every time.
func (n *Node) start() error {
	cfg, w := n.cfg, n.world

	// Bridge load feeds the daemon's advertised-quality penalty (§4).
	loadPenalty := func() int {
		n.mu.Lock()
		b := n.bridge
		n.mu.Unlock()
		if b == nil {
			return 0
		}
		return b.LoadPenalty()
	}

	d, err := daemon.New(daemon.Config{
		Name:                 cfg.Name,
		Mobility:             cfg.Mobility,
		Clock:                w.clk,
		ServiceCheckInterval: cfg.ServiceCheckInterval,
		LegacyOneHop:         cfg.LegacyDiscovery,
		DisableDeltaSync:     cfg.FullSyncOnly,
		DisableIdentity:      cfg.DisableIdentity,
		QualityFirst:         cfg.QualityFirst,
		LoadPenalty:          loadPenalty,
		LinkHorizon:          cfg.LinkHorizon,
		LinkWindow:           cfg.LinkWindow,
		MaxMissedLoops:       cfg.MaxMissedLoops,
	})
	if err != nil {
		return err
	}
	for _, t := range n.techs {
		radio, ok := n.dev.Radio(t)
		if !ok {
			return fmt.Errorf("peerhood: device %q lost its %v radio", cfg.Name, t)
		}
		if err := d.AddPlugin(pluginFor(w.sim, radio)); err != nil {
			return err
		}
	}
	if err := d.Start(cfg.AutoDiscover); err != nil {
		return err
	}

	lib, err := library.New(library.Config{
		Daemon:      d,
		DialRetries: cfg.DialRetries,
		SwapWait:    cfg.SwapWait,
	})
	if err != nil {
		d.Stop()
		return err
	}
	if err := lib.Start(); err != nil {
		d.Stop()
		return err
	}

	var b *bridge.Service
	if !cfg.DisableBridge {
		b, err = bridge.Attach(bridge.Config{Library: lib, MaxPairs: cfg.BridgeMaxPairs})
		if err != nil {
			lib.Stop()
			d.Stop()
			return err
		}
	}

	n.mu.Lock()
	n.daemon, n.lib, n.bridge = d, lib, b
	n.mu.Unlock()
	return nil
}

// d returns the node's current daemon.
func (n *Node) d() *daemon.Daemon {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.daemon
}

// l returns the node's current library.
func (n *Node) l() *library.Library {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lib
}

// Name returns the node's device name.
func (n *Node) Name() string { return n.cfg.Name }

// Crash tears the node's daemon, library, and bridge down abruptly,
// leaving registered handover threads orphaned (their monitored
// connections die with the library) and the simulated device in the
// world. It implements the fault plane's NodeHandle; a faultplane.Crash
// event also powers the device's radios down. Idempotent.
func (n *Node) Crash() error {
	n.mu.Lock()
	if n.crashed || n.stopped {
		n.mu.Unlock()
		return nil
	}
	n.crashed = true
	threads := n.threads
	n.threads = nil
	b := n.bridge
	lib, d := n.lib, n.daemon
	n.bridge = nil
	n.mu.Unlock()

	for _, th := range threads {
		th.Stop()
	}
	if b != nil {
		_ = b.Close()
	}
	lib.Stop()
	d.Stop()
	return nil
}

// Restart rebuilds a crashed node's daemon, library, and bridge on the
// same radios. The replacement daemon starts with an empty storage table
// and a fresh epoch: peers that had delta-synced with the old instance
// detect the restart on their next fetch and fall back to a full
// neighbourhood resync — the recovery path the fault plane's churn events
// exist to exercise.
func (n *Node) Restart() error {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return errors.New("peerhood: Restart on a stopped node")
	}
	if !n.crashed {
		n.mu.Unlock()
		return errors.New("peerhood: Restart on a node that was not crashed")
	}
	n.mu.Unlock()

	if err := n.start(); err != nil {
		return err
	}
	// A Stop may have raced the rebuild (a background fault script
	// restarting a node while the world shuts down): it saw crashed=true
	// and stopped nothing, so the components start() just built are ours
	// to tear down.
	n.mu.Lock()
	if n.stopped {
		b, lib, d := n.bridge, n.lib, n.daemon
		n.bridge = nil
		n.mu.Unlock()
		if b != nil {
			_ = b.Close()
		}
		lib.Stop()
		d.Stop()
		return errors.New("peerhood: node stopped during Restart")
	}
	n.crashed = false
	n.mu.Unlock()
	return nil
}

// Addr returns the node's primary (first-technology) radio address.
func (n *Node) Addr() Addr {
	ps := n.d().Plugins()
	if len(ps) == 0 {
		return Addr{}
	}
	return ps[0].Addr()
}

// AddrFor returns the node's radio address for a technology.
func (n *Node) AddrFor(t Tech) (Addr, bool) {
	p, ok := n.d().PluginFor(t)
	if !ok {
		return Addr{}, false
	}
	return p.Addr(), true
}

// Info returns the descriptor the node advertises on its primary radio.
func (n *Node) Info() DeviceInfo {
	ps := n.d().Plugins()
	if len(ps) == 0 {
		return DeviceInfo{}
	}
	info, _ := n.d().InfoFor(ps[0].Tech())
	return info
}

// Library exposes the node's PeerHood library.
func (n *Node) Library() *library.Library { return n.l() }

// Daemon exposes the node's daemon.
func (n *Node) Daemon() *daemon.Daemon { return n.d() }

// BridgeService exposes the node's bridge (nil if disabled).
func (n *Node) BridgeService() *bridge.Service {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.bridge
}

// Device exposes the simulated device (position, movement, power).
func (n *Node) Device() *simnet.Device { return n.dev }

// SetModel changes how the node moves from now on.
func (n *Node) SetModel(m MobilityModel) { n.dev.SetModel(m) }

// Position returns the node's current position.
func (n *Node) Position() Point { return n.dev.Position() }

// RegisterService registers a named service with a connection handler
// (the thesis' RegisterService + Engine callback pair).
func (n *Node) RegisterService(name, attr string, h Handler) (ServiceInfo, error) {
	return n.l().RegisterService(name, attr, h)
}

// UnregisterService removes a service.
func (n *Node) UnregisterService(name string) { n.l().UnregisterService(name) }

// Devices returns the node's device storage (GetDeviceList).
func (n *Node) Devices() []Entry { return n.l().GetDeviceList() }

// Providers returns known providers of a named service (GetServiceList).
func (n *Node) Providers(service string) []ServiceProvider {
	return n.l().GetServiceList(service)
}

// LookupDevice returns the storage entry for an address.
func (n *Node) LookupDevice(a Addr) (Entry, bool) {
	return n.d().Storage().Lookup(a)
}

// FindDevice returns the storage entry for a device name.
func (n *Node) FindDevice(name string) (Entry, bool) {
	return n.d().Storage().FindByName(name)
}

// StorageTable renders the node's device storage as a table (fig 3.6).
func (n *Node) StorageTable() string { return n.d().Storage().String() }

// RunDiscoveryRound performs one synchronous discovery round on every
// attached plugin.
func (n *Node) RunDiscoveryRound() { n.d().RunDiscoveryRound() }

// Events subscribes to the node's neighbourhood event bus: device
// appearances and losses from discovery, link degradation predictions
// from the link monitor, and handover lifecycle notifications. A zero
// mask subscribes to everything. Close the subscription when done; it
// also closes when the node stops.
func (n *Node) Events(mask EventMask) *EventSubscription {
	return n.l().Events(mask)
}

// LinkStates snapshots the link monitor's view of every observed link.
func (n *Node) LinkStates() []LinkState {
	return n.d().LinkMonitor().States()
}

// Connect establishes a connection to a named service on a target device,
// directly or through bridges, using the best stored route.
func (n *Node) Connect(target Addr, service string, opts ...library.ConnectOption) (*Connection, error) {
	return n.l().Connect(target, service, opts...)
}

// WithClientInfo re-exports the Connect option enabling server dial-back
// (§5.3).
func WithClientInfo() library.ConnectOption { return library.WithClientInfo() }

// WithTech re-exports the Connect option stating a per-connection bearer
// preference: dial the target device's sibling interface of technology t
// when its identity has one stored and reachable.
func WithTech(t Tech) library.ConnectOption { return library.WithTech(t) }

// WithContinuity re-exports the Connect option enabling the zero-loss
// session-continuity window: handovers resume the byte stream (PH_RESUME)
// instead of tearing it, with the un-acked tail replayed on the new bearer.
// Legacy peers that do not speak the extension fall back to today's lossy
// behaviour automatically.
func WithContinuity() library.ConnectOption { return library.WithContinuity() }

// WithContinuityWindow is WithContinuity with an explicit send-window bound
// in bytes (<= 0 takes the default).
func WithContinuityWindow(bytes int) library.ConnectOption {
	return library.WithContinuityWindow(bytes)
}

// SiblingsOf returns the stored entries for the other interfaces of a's
// device identity (the cross-interface identity plane).
func (n *Node) SiblingsOf(a Addr) []Entry { return n.d().Storage().Siblings(a) }

// HandoverConfig tunes MonitorHandover. Zero values take the thesis'
// defaults (threshold 230, low-limit 3, 1 s interval).
type HandoverConfig struct {
	Threshold        int
	LowLimit         int
	Interval         time.Duration
	MaxRouteAttempts int
	MaxFailures      int
	ThesisMode       bool // disallow returning to direct routes (fig 5.7)
	AllowReconnect   func(p ServiceProvider) bool
	Observer         handover.Observer
	ManualSteps      bool // do not start the background loop

	// Predictive enables proactive handover on the link monitor's
	// degradation predictions: re-route while quality is still above the
	// threshold, keeping the reactive trigger as fallback.
	Predictive bool
	// PredictHorizon is the act-ahead window (default 5 s).
	PredictHorizon time.Duration
	// PredictCooldown spaces predictive triggers (default 10 s).
	PredictCooldown time.Duration

	// Policy names the candidate-selection policy (PolicyStrongestLink,
	// PolicyBandwidthFirst, PolicyCostFirst); empty uses the node's
	// HandoverPolicy, and failing that strongest-link.
	Policy string
	// TechHold is the per-tech hysteresis dwell after a vertical switch
	// (default 15 s): discretionary bearer changes are suppressed and
	// same-tech rescue candidates preferred, so BT↔WLAN cannot flap.
	TechHold time.Duration
	// UpgradeMargin is the quality headroom above the threshold a
	// candidate needs before a discretionary upgrade takes it (default 10).
	UpgradeMargin int
	// UpgradeCooldown spaces failed discretionary upgrade attempts
	// (default 5 s), bounding dial churn when the preferred bearer keeps
	// refusing.
	UpgradeCooldown time.Duration
}

// MonitorHandover attaches a handover thread to a connection and (unless
// ManualSteps) starts it. The node stops it on Stop.
func (n *Node) MonitorHandover(conn *Connection, cfg HandoverConfig) (*HandoverThread, error) {
	policyName := cfg.Policy
	if policyName == "" {
		policyName = n.cfg.HandoverPolicy
	}
	policy, err := handover.PolicyByName(policyName)
	if err != nil {
		return nil, err
	}
	th, err := handover.New(handover.Config{
		Library:              n.l(),
		Conn:                 conn,
		Threshold:            cfg.Threshold,
		LowLimit:             cfg.LowLimit,
		Interval:             cfg.Interval,
		MaxRouteAttempts:     cfg.MaxRouteAttempts,
		MaxFailures:          cfg.MaxFailures,
		DisallowDirectReturn: cfg.ThesisMode,
		AllowReconnect:       cfg.AllowReconnect,
		Observer:             cfg.Observer,
		Predictive:           cfg.Predictive,
		PredictHorizon:       cfg.PredictHorizon,
		PredictCooldown:      cfg.PredictCooldown,
		Policy:               policy,
		TechHold:             cfg.TechHold,
		UpgradeMargin:        cfg.UpgradeMargin,
		UpgradeCooldown:      cfg.UpgradeCooldown,
	})
	if err != nil {
		return nil, err
	}
	if !cfg.ManualSteps {
		th.Start()
	}
	n.mu.Lock()
	n.threads = append(n.threads, th)
	n.mu.Unlock()
	return th, nil
}

// Stop shuts the node down: handover threads, bridge, library, daemon.
// A crashed node's components are already stopped; Stop then only seals
// the node against Restart.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	crashed := n.crashed
	threads := n.threads
	b := n.bridge
	lib, d := n.lib, n.daemon
	n.mu.Unlock()

	if crashed {
		return
	}
	for _, th := range threads {
		th.Stop()
	}
	if b != nil {
		_ = b.Close()
	}
	lib.Stop()
	d.Stop()
}

// pluginFor wraps a simulated radio in the plugin interface.
func pluginFor(w *simnet.World, r *simnet.Radio) *plugin.Sim {
	return plugin.NewSim(w, r)
}

// Discovery diagnostics re-exports.

// RoundReport summarises one discovery round.
type RoundReport = discovery.RoundReport

// Errors re-exported for callers.
var (
	ErrUnknownDevice  = library.ErrUnknownDevice
	ErrUnknownService = library.ErrUnknownService
	ErrRejected       = library.ErrRejected
	ErrNoRoute        = library.ErrNoRoute
)

// String helpers.

// FormatEntry renders one storage entry as a single line.
func FormatEntry(e Entry) string {
	best, ok := e.Best()
	if !ok {
		return fmt.Sprintf("%s %s (no route)", e.Info.Name, e.Info.Addr)
	}
	return fmt.Sprintf("%s %s %s", e.Info.Name, e.Info.Addr, best)
}
