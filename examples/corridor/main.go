// Corridor handover: the thesis' routing-handover scenario (§5.2.1,
// figs 5.4-5.8). A phone streams messages to a server while walking down a
// corridor; as the direct link weakens past the 230 threshold, the
// HandoverThread re-routes the same logical connection through a bridge
// node using PH_RECONNECT, and the stream continues.
//
// Run with: go run ./examples/corridor
package main

import (
	"fmt"
	"log"
	"time"

	"peerhood"
	"peerhood/internal/handover"
)

func main() {
	world := peerhood.NewWorld(peerhood.WorldConfig{
		Seed:              3,
		TimeScale:         500,
		LinkCheckInterval: 500 * time.Millisecond,
	})
	defer world.Close()
	clk := world.Clock()

	server, err := world.NewNode(peerhood.NodeConfig{
		Name: "office-pc", Position: peerhood.Pt(0, 0), AutoDiscover: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := world.NewNode(peerhood.NodeConfig{
		Name: "hallway-laptop", Position: peerhood.Pt(6, 0), AutoDiscover: true,
	}); err != nil {
		log.Fatal(err)
	}
	phone, err := world.NewNode(peerhood.NodeConfig{
		Name: "phone", Position: peerhood.Pt(1, 0),
		Mobility: peerhood.Dynamic, AutoDiscover: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	received := 0
	if _, err := server.RegisterService("print", "", func(conn *peerhood.Connection, meta peerhood.ConnectionMeta) {
		defer conn.Close()
		buf := make([]byte, 64)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			received++
			fmt.Printf("server: %s\n", buf[:n])
		}
	}); err != nil {
		log.Fatal(err)
	}

	world.RunDiscoveryRounds(3)

	conn, err := phone.Connect(server.Addr(), "print")
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	conn.OnSwap(func(oldRemote, newRemote peerhood.Addr) {
		fmt.Printf("phone: ChangeConnection — transport moved %v -> %v\n", oldRemote, newRemote)
	})
	if _, err := phone.MonitorHandover(conn, peerhood.HandoverConfig{
		Observer: func(e peerhood.HandoverEvent, detail string) {
			switch e {
			case handover.EventHandoverStart, handover.EventHandoverDone, handover.EventHandoverFailed:
				fmt.Printf("handover: %v (%s)\n", e, detail)
			}
		},
	}); err != nil {
		log.Fatal(err)
	}

	// Walk out of the office, down the corridor, stopping near the
	// hallway laptop.
	fmt.Println("phone: walking down the corridor at 1.0 m/s...")
	phone.SetModel(peerhood.Walk(peerhood.Pt(1, 0), peerhood.Pt(9, 0), 1.0))

	for i := 1; i <= 25; i++ {
		msg := fmt.Sprintf("good morning! (%02d)", i)
		if _, err := conn.Write([]byte(msg)); err != nil {
			fmt.Printf("phone: message %d lost: %v\n", i, err)
		}
		clk.Sleep(time.Second)
	}
	clk.Sleep(2 * time.Second)

	fmt.Printf("\ndelivered %d/25 messages; connection used %d transport(s); bridge now: %v\n",
		received, conn.Generation(), conn.Bridge())
}
