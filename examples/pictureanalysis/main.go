// Picture analysis: the thesis' task-migration showcase (§5.3, fig 5.10).
// A phone ships a "picture" to a fixed analysis server and walks away
// while the server crunches; the connection dies, and the server uses its
// routing table to dial the phone back through a corridor bridge and
// deliver the result — the thesis' result routing.
//
// Run with: go run ./examples/pictureanalysis
package main

import (
	"fmt"
	"log"
	"time"

	"peerhood"
	"peerhood/internal/migration"
)

func main() {
	world := peerhood.NewWorld(peerhood.WorldConfig{
		Seed:              2,
		TimeScale:         200,
		LinkCheckInterval: 500 * time.Millisecond,
	})
	defer world.Close()

	server, err := world.NewNode(peerhood.NodeConfig{
		Name: "analysis-server", Position: peerhood.Pt(0, 0), AutoDiscover: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := world.NewNode(peerhood.NodeConfig{
		Name: "corridor-bridge", Position: peerhood.Pt(6, 0), AutoDiscover: true,
	}); err != nil {
		log.Fatal(err)
	}
	phone, err := world.NewNode(peerhood.NodeConfig{
		Name: "phone", Position: peerhood.Pt(1, 0),
		Mobility: peerhood.Dynamic, AutoDiscover: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	if _, err := migration.NewServer(migration.ServerConfig{
		Library:        server.Library(),
		ProcessingRate: 64 << 10, // "high processing power" fixed host
		DialBack:       true,
		Observer: func(ev migration.ServerEvent) {
			fmt.Printf("server: task %d finished, %d packages, delivery=%v\n",
				ev.TaskID, ev.Packages, ev.Delivery)
		},
	}); err != nil {
		log.Fatal(err)
	}
	client, err := migration.NewClient(phone.Library())
	if err != nil {
		log.Fatal(err)
	}

	world.RunDiscoveryRounds(3)

	// A 384 KB "picture" in 12 packages: big enough that processing
	// outlives the phone's stay in coverage.
	pkgs := make([][]byte, 12)
	for i := range pkgs {
		p := make([]byte, 32<<10)
		for j := range p {
			p[j] = byte(i + j)
		}
		pkgs[i] = p
	}

	fmt.Println("phone: submitting picture and walking away...")
	out, err := client.Submit(migration.ClientConfig{
		Library:       phone.Library(),
		Provider:      server.Addr(),
		TaskID:        1,
		Packages:      pkgs,
		ResultTimeout: 2 * time.Minute,
		OnConnect: func(conn *peerhood.Connection) {
			// The walk starts when the transmission starts (fig 5.3).
			phone.SetModel(peerhood.Walk(phone.Position(), peerhood.Pt(14, 0), 1.0))
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("phone: result received via %v after %.1fs (simulated), %d analysis entries\n",
		out.Delivery, out.Duration.Seconds(), out.ResultPackages)
	if out.Delivery == migration.DeliveryDialBack {
		fmt.Println("the server found the phone in its routing table and dialled back through the bridge — §5.3 case 2")
	}
}
