// Tunnel coverage amplification: the thesis' fig 6.1 application. A phone
// deep inside a tunnel has no signal; Bluetooth relay boxes installed
// along the tunnel bridge the connection hop by hop to a GPRS-equipped
// server at the mouth, giving the phone access to the outside world.
//
// Run with: go run ./examples/tunnel
package main

import (
	"fmt"
	"log"

	"peerhood"
)

func main() {
	world := peerhood.NewWorld(peerhood.WorldConfig{Seed: 4, TimeScale: 1000})
	defer world.Close()

	mouth, err := world.NewNode(peerhood.NodeConfig{
		Name:     "tunnel-mouth-gateway",
		Position: peerhood.Pt(0, 0),
		Techs:    []peerhood.Tech{peerhood.Bluetooth, peerhood.GPRS},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, x := range []float64{8, 16, 24} {
		if _, err := world.NewNode(peerhood.NodeConfig{
			Name:     fmt.Sprintf("tunnel-relay-%d", i+1),
			Position: peerhood.Pt(x, 0),
		}); err != nil {
			log.Fatal(err)
		}
	}
	phone, err := world.NewNode(peerhood.NodeConfig{
		Name: "phone", Position: peerhood.Pt(30, 0), Mobility: peerhood.Dynamic,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The gateway proxies "the whole GPRS network"; here it answers any
	// request with a canned response.
	if _, err := mouth.RegisterService("internet", "gprs-gateway", func(conn *peerhood.Connection, meta peerhood.ConnectionMeta) {
		defer conn.Close()
		buf := make([]byte, 256)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			resp := fmt.Sprintf("HTTP/1.0 200 OK (proxied over GPRS for %q)", buf[:n])
			if _, err := conn.Write([]byte(resp)); err != nil {
				return
			}
		}
	}); err != nil {
		log.Fatal(err)
	}

	world.RunDiscoveryRounds(5)

	gatewayBT, _ := mouth.AddrFor(peerhood.Bluetooth)
	entry, ok := phone.LookupDevice(gatewayBT)
	if !ok {
		log.Fatal("phone never learned about the gateway — tunnel too long?")
	}
	route, _ := entry.Best()
	fmt.Printf("phone's route to the gateway: %v\n", route)

	conn, err := phone.Connect(gatewayBT, "internet")
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	if _, err := conn.Write([]byte("GET http://example.com/")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 256)
	n, err := conn.Read(buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phone received: %s\n", buf[:n])
	fmt.Println("three Bluetooth relays amplified the gateway's coverage 30 m into the tunnel (fig 6.1)")
}
