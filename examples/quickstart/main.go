// Quickstart: two PeerHood devices in a simulated wireless neighbourhood
// discover each other, one registers an echo service, the other finds it
// in its device storage and connects.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"peerhood"
)

func main() {
	world := peerhood.NewWorld(peerhood.WorldConfig{Seed: 1, TimeScale: 1000})
	defer world.Close()

	// A fixed PC offering a service, three metres from a phone.
	pc, err := world.NewNode(peerhood.NodeConfig{
		Name:     "living-room-pc",
		Position: peerhood.Pt(3, 0),
		Mobility: peerhood.Static,
	})
	if err != nil {
		log.Fatal(err)
	}
	phone, err := world.NewNode(peerhood.NodeConfig{
		Name:     "phone",
		Position: peerhood.Pt(0, 0),
		Mobility: peerhood.Dynamic,
	})
	if err != nil {
		log.Fatal(err)
	}

	if _, err := pc.RegisterService("echo", "demo", func(conn *peerhood.Connection, meta peerhood.ConnectionMeta) {
		defer conn.Close()
		buf := make([]byte, 256)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			if _, err := conn.Write(buf[:n]); err != nil {
				return
			}
		}
	}); err != nil {
		log.Fatal(err)
	}

	// Each discovery round the daemon inquires, fetches device information
	// and merges the neighbours' device storages (ch. 3 of the thesis).
	world.RunDiscoveryRounds(2)

	fmt.Println("phone's device storage after discovery:")
	fmt.Println(phone.StorageTable())

	for _, p := range phone.Providers("echo") {
		fmt.Printf("found service %v on %s\n", p.Service, p.Entry.Info.Name)
	}

	conn, err := phone.Connect(pc.Addr(), "echo")
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	if _, err := conn.Write([]byte("hello PeerHood")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("echo reply: %q\n", buf[:n])
}
