package peerhood_test

import (
	"testing"
	"time"

	"peerhood"
)

func TestQuickstartFlow(t *testing.T) {
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: 1, Instant: true})
	defer w.Close()

	server, err := w.NewNode(peerhood.NodeConfig{
		Name:     "pc",
		Position: peerhood.Pt(3, 0),
		Mobility: peerhood.Static,
	})
	if err != nil {
		t.Fatal(err)
	}
	phone, err := w.NewNode(peerhood.NodeConfig{
		Name:     "phone",
		Position: peerhood.Pt(0, 0),
		Mobility: peerhood.Dynamic,
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := server.RegisterService("echo", "v1", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
		defer c.Close()
		buf := make([]byte, 64)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}

	w.RunDiscoveryRounds(2)

	devs := phone.Devices()
	if len(devs) != 1 || devs[0].Info.Name != "pc" {
		t.Fatalf("Devices() = %+v", devs)
	}
	provs := phone.Providers("echo")
	if len(provs) != 1 {
		t.Fatalf("Providers = %+v", provs)
	}

	conn, err := phone.Connect(server.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("echo = %q, %v", buf[:n], err)
	}
}

func TestFacadeHandoverIntegration(t *testing.T) {
	// Full-stack routing handover through the public API: phone connected
	// to a weak server with a bridge nearby; manual handover steps swap
	// the route.
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: 2, Instant: true})
	defer w.Close()

	server, err := w.NewNode(peerhood.NodeConfig{Name: "server", Position: peerhood.Pt(6, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.NewNode(peerhood.NodeConfig{Name: "bridge", Position: peerhood.Pt(3, 0)}); err != nil {
		t.Fatal(err)
	}
	phone, err := w.NewNode(peerhood.NodeConfig{Name: "phone", Position: peerhood.Pt(0, 0), Mobility: peerhood.Dynamic})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := server.RegisterService("sink", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
		defer c.Close()
		buf := make([]byte, 1024)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}

	w.RunDiscoveryRounds(3)

	conn, err := phone.Connect(server.Addr(), "sink")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	th, err := phone.MonitorHandover(conn, peerhood.HandoverConfig{ManualSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	// Quality at 6 m ≈ 210 < 230: four steps trigger the handover.
	for i := 0; i < 4; i++ {
		th.Step()
	}
	if conn.Swaps() != 1 {
		t.Fatalf("swaps = %d, want 1", conn.Swaps())
	}
	if conn.Bridge().IsZero() {
		t.Fatal("connection not rerouted via the bridge")
	}
	if _, err := conn.Write([]byte("still alive")); err != nil {
		t.Fatalf("write after handover: %v", err)
	}
}

func TestWorldCloseStopsNodes(t *testing.T) {
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: 3, Instant: true, LinkCheckInterval: time.Second})
	n, err := w.NewNode(peerhood.NodeConfig{Name: "x", AutoDiscover: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = n
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeConfigValidation(t *testing.T) {
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: 4, Instant: true})
	defer w.Close()
	if _, err := w.NewNode(peerhood.NodeConfig{}); err == nil {
		t.Fatal("nameless node accepted")
	}
	if _, err := w.NewNode(peerhood.NodeConfig{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.NewNode(peerhood.NodeConfig{Name: "a"}); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestMultiTechNode(t *testing.T) {
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: 5, Instant: true})
	defer w.Close()
	n, err := w.NewNode(peerhood.NodeConfig{
		Name:  "gateway",
		Techs: []peerhood.Tech{peerhood.Bluetooth, peerhood.GPRS},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.AddrFor(peerhood.Bluetooth); !ok {
		t.Fatal("no BT addr")
	}
	if _, ok := n.AddrFor(peerhood.GPRS); !ok {
		t.Fatal("no GPRS addr")
	}
	if _, ok := n.AddrFor(peerhood.WLAN); ok {
		t.Fatal("phantom WLAN addr")
	}
}
